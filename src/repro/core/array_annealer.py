"""Array-native annealing walks: the single-chain array kernel and the
batched lock-step multi-replica engine.

This module is the third and fourth performance tier of the packet annealer
(see ``SAConfig``): the *reference* tier evaluates every move through
``comm_model.cost()`` calls (``compiled=False``), the *kernel* tier
(:func:`~repro.core.packet_annealer._anneal_indexed`, PR 1) fuses the walk
over the :class:`~repro.core.kernel.PacketKernel`'s dense tables, and the
tiers here move the remaining per-proposal Python overhead onto flat arrays:

* :func:`anneal_array` — the single-chain walk on flat index state.  The
  mapping lives in assignment/occupancy vectors (``assign[i] = j`` or ``-1``)
  plus an explicit insertion-order list that reproduces the dict-order
  semantics the kernel walk relies on (drop-victim selection and the
  full-cost resynchronization both iterate in insertion order); randomness is
  consumed from per-temperature blocks of pre-drawn values — one
  ``random_raw`` bulk pull converted **vectorized** into the exact doubles
  and 32-bit halves :class:`~repro.utils.rng.StreamDraws` would have produced
  one scalar call at a time.  Every stochastic decision and every float
  operation happens in the same order as the kernel walk, so a fixed-seed run
  is bit-for-bit identical to both ``_anneal_indexed`` and the
  ``SAConfig(compiled=False)`` reference.

* :func:`anneal_replicas_batched` — B independent replicas annealed in
  lock-step over ``(B, k)`` state matrices with vectorized propose /
  evaluate / accept.  Each replica owns one child generator (from
  :func:`repro.utils.rng.split`) and its lane replicates the scalar
  single-chain walk on that stream **bit for bit**: per-lane draw cursors
  index pre-drawn ``(B, block)`` matrices, the Lemire bounded-integer draw is
  vectorized across lanes (with a scalar slow path for its astronomically
  rare rejection loop), move deltas are gathered from the kernel tables with
  fancy indexing in the scalar walk's float operation order, and the sigmoid
  acceptance keeps ``math.exp`` per lane so the acceptance bits cannot drift
  from the scalar path's libm.  The contract — proven by
  :func:`anneal_replicas_scalar` in the differential tests — is that replica
  *b* of a batched run equals a scalar single-chain run on child *b*.

* :func:`compile_fast_packet` — builds an index-space
  :class:`~repro.core.packet.AnnealingPacket` and its
  :class:`~repro.core.kernel.PacketKernel` directly from a fast-engine
  :class:`~repro.sim.compile.FastPacket`, gathering the communication table
  from the compiled scenario's per-edge equation-4 tensor instead of calling
  ``cost_row`` per predecessor (same accumulation order, bit-identical
  rows).  This is what gives SA a real ``fast_assign``.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

import numpy as np

from repro.annealing.acceptance import BoltzmannSigmoidAcceptance
from repro.annealing.annealer import Annealer, AnnealingResult
from repro.annealing.stopping import (
    CombinedStopping,
    MaxIterationsStopping,
    StallStopping,
)
from repro.core.kernel import PacketKernel
from repro.core.moves import _DROP_PROBABILITY
from repro.core.packet import AnnealingPacket, PacketMapping

__all__ = [
    "anneal_array",
    "anneal_replicas_batched",
    "anneal_replicas_scalar",
    "compile_fast_packet",
]

_INV_2_53 = 1.0 / 9007199254740992.0  # 2**-53, numpy's double construction
_M32 = (1 << 32) - 1
_RAW_BLOCK = 1024


# --------------------------------------------------------------------------- #
# The single-chain array walk
# --------------------------------------------------------------------------- #

def anneal_array(
    kernel: PacketKernel,
    problem,
    annealer: Annealer,
    rng,
) -> AnnealingResult:
    """Single-chain annealing walk over flat array state.

    Drop-in replacement for ``_anneal_indexed`` (same signature, bit-identical
    result for a fixed seed); requires the sigmoid acceptance rule — the
    caller dispatches other rules to the kernel walk.  See the module
    docstring for the draw-block and insertion-order machinery.
    """
    if type(annealer.acceptance) is not BoltzmannSigmoidAcceptance:
        raise ValueError("anneal_array requires BoltzmannSigmoidAcceptance")
    cooling = annealer.cooling
    stopping = annealer.stopping
    moves = annealer.moves_per_temperature

    state0 = problem.initial_state(rng)
    n_ready, n_idle = kernel.n_ready, kernel.n_idle
    # Flat mapping state: assignment / occupancy vectors plus the explicit
    # insertion-order list that mirrors the dict-order semantics of the
    # kernel walk (drop victims and resync sums both follow it).
    assign = [-1] * n_ready
    occ = [-1] * n_idle
    order: List[int] = []
    for i, j in state0.task_to_proc.items():
        assign[i] = j
        occ[j] = i
        order.append(i)

    brows = kernel.balance_rows
    rows = kernel.comm_rows
    wb, wc = kernel.weight_balance, kernel.weight_comm
    br, cr = kernel.balance_range, kernel.comm_range
    comm_enabled = kernel.comm_enabled
    degenerate = n_ready == 0 or n_idle == 0

    def full_cost() -> float:
        # Mirrors the kernel walk's resync sum: insertion-order accumulation
        # starting from the integer 0, negated afterwards.
        acc = 0
        for i in order:
            acc = acc + brows[i][assign[i]]
        fc = 0.0
        if comm_enabled:
            for i in order:
                fc += rows[i][assign[i]]
        return wc * fc / cr + wb * (-acc) / br

    cost = full_cost()
    best_assign = assign.copy()
    best_order = order.copy()
    best_cost = cost

    t0 = (
        annealer.initial_temperature
        if annealer.initial_temperature is not None
        else problem.initial_temperature(rng)
    )
    if t0 <= 0:
        raise ValueError(f"initial temperature must be > 0, got {t0}")

    stopping.reset()

    # Pre-drawn blocks: raw 64-bit outputs pulled in bulk and converted
    # vectorized into the doubles and 32-bit halves StreamDraws would have
    # produced scalar call by scalar call.  A pending buffered half-word in
    # the generator's state is honoured, like StreamDraws does.
    bitgen = rng.bit_generator
    gstate = bitgen.state
    half = int(gstate["uinteger"]) if gstate.get("has_uint32") else None
    dbl: List[float] = []
    lo: List[int] = []
    hi: List[int] = []
    pos = 0
    blen = 0
    # Worst-case consumption of one temperature block: four raw words per
    # proposal (drop check, task, processor, acceptance) plus slack for the
    # Lemire rejection loop (probability < 2**-26 per draw).
    worst = 4 * moves + 64

    def refill(extra: int = _RAW_BLOCK) -> None:
        nonlocal dbl, lo, hi, pos, blen
        raw = bitgen.random_raw(extra)
        dbl = dbl[pos:]
        dbl.extend(((raw >> 11) * _INV_2_53).tolist())
        lo = lo[pos:]
        lo.extend((raw & _M32).tolist())
        hi = hi[pos:]
        hi.extend((raw >> 32).tolist())
        pos = 0
        blen = len(dbl)

    exp = math.exp
    drop_p = _DROP_PROBABILITY
    n_proposals = 0
    n_accepted = 0
    outer = 0
    while True:
        temperature = cooling.temperature(outer, t0)
        if temperature < 0:
            raise ValueError(f"temperature must be >= 0, got {temperature}")
        zero_temp = temperature == 0.0
        infinite_temp = math.isinf(temperature)
        if blen - pos < worst:
            refill(max(worst, _RAW_BLOCK))
        for _ in range(moves):
            # ---- propose (kernel-walk logic over flat state) -------------- #
            # move kinds: 0 zero-delta, 1 drop, 2 (re)assign, 3 replace, 4 swap
            kind = 0
            delta = 0.0
            if not degenerate:
                if order and dbl[pos] < drop_p:
                    pos += 1
                    na = len(order)
                    if na == 1:
                        vidx = 0
                    else:
                        if half is not None:
                            u32 = half
                            half = None
                        else:
                            u32 = lo[pos]
                            half = hi[pos]
                            pos += 1
                        m = u32 * na
                        leftover = m & _M32
                        if leftover < na:  # pragma: no cover - ~2**-26 per draw
                            threshold = (4294967296 - na) % na
                            while leftover < threshold:
                                if half is not None:
                                    u32 = half
                                    half = None
                                else:
                                    if pos >= blen:
                                        refill()
                                    u32 = lo[pos]
                                    half = hi[pos]
                                    pos += 1
                                m = u32 * na
                                leftover = m & _M32
                        vidx = m >> 32
                    task = order[vidx]
                    old_j = assign[task]
                    kind = 1
                    balance_delta = 0.0 + brows[task][old_j]
                    comm_delta = 0.0 - rows[task][old_j]
                    delta = wc * comm_delta / cr + wb * balance_delta / br
                else:
                    if order:
                        pos += 1  # the drop-check double was consumed
                    # integers(0, n_ready)
                    if n_ready == 1:
                        task = 0
                    else:
                        if half is not None:
                            u32 = half
                            half = None
                        else:
                            u32 = lo[pos]
                            half = hi[pos]
                            pos += 1
                        m = u32 * n_ready
                        leftover = m & _M32
                        if leftover < n_ready:  # pragma: no cover
                            threshold = (4294967296 - n_ready) % n_ready
                            while leftover < threshold:
                                if half is not None:
                                    u32 = half
                                    half = None
                                else:
                                    if pos >= blen:
                                        refill()
                                    u32 = lo[pos]
                                    half = hi[pos]
                                    pos += 1
                                m = u32 * n_ready
                                leftover = m & _M32
                        task = m >> 32
                    cur = assign[task]
                    if cur < 0:
                        # integers(0, n_idle)
                        if n_idle == 1:
                            new_j = 0
                        else:
                            if half is not None:
                                u32 = half
                                half = None
                            else:
                                u32 = lo[pos]
                                half = hi[pos]
                                pos += 1
                            m = u32 * n_idle
                            leftover = m & _M32
                            if leftover < n_idle:  # pragma: no cover
                                threshold = (4294967296 - n_idle) % n_idle
                                while leftover < threshold:
                                    if half is not None:
                                        u32 = half
                                        half = None
                                    else:
                                        if pos >= blen:
                                            refill()
                                        u32 = lo[pos]
                                        half = hi[pos]
                                        pos += 1
                                    m = u32 * n_idle
                                    leftover = m & _M32
                            new_j = m >> 32
                    elif n_idle == 1:
                        new_j = -1  # nowhere else to go: zero-delta proposal
                    else:
                        # integers(0, n_idle - 1), skipping the current slot
                        bound = n_idle - 1
                        if bound == 1:
                            idx = 0
                        else:
                            if half is not None:
                                u32 = half
                                half = None
                            else:
                                u32 = lo[pos]
                                half = hi[pos]
                                pos += 1
                            m = u32 * bound
                            leftover = m & _M32
                            if leftover < bound:  # pragma: no cover
                                threshold = (4294967296 - bound) % bound
                                while leftover < threshold:
                                    if half is not None:
                                        u32 = half
                                        half = None
                                    else:
                                        if pos >= blen:
                                            refill()
                                        u32 = lo[pos]
                                        half = hi[pos]
                                        pos += 1
                                    m = u32 * bound
                                    leftover = m & _M32
                            idx = m >> 32
                        if idx >= cur:
                            idx += 1
                        new_j = idx
                    if new_j >= 0:
                        brow = brows[task]
                        row = rows[task]
                        occupant = occ[new_j]
                        if occupant < 0:
                            kind = 2
                            if cur >= 0:
                                balance_delta = 0.0 + brow[cur]
                                comm_delta = 0.0 - row[cur]
                            else:
                                balance_delta = 0.0
                                comm_delta = 0.0
                            balance_delta -= brow[new_j]
                            comm_delta += row[new_j]
                        elif cur < 0:
                            kind = 3
                            balance_delta = 0.0 + brows[occupant][new_j]
                            comm_delta = 0.0 - rows[occupant][new_j]
                            balance_delta -= brow[new_j]
                            comm_delta += row[new_j]
                        else:
                            kind = 4
                            balance_delta = 0.0 + brow[cur]
                            comm_delta = 0.0 - row[cur]
                            balance_delta -= brow[new_j]
                            comm_delta += row[new_j]
                            occ_brow = brows[occupant]
                            occ_row = rows[occupant]
                            balance_delta += occ_brow[new_j]
                            comm_delta -= occ_row[new_j]
                            balance_delta -= occ_brow[cur]
                            comm_delta += occ_row[cur]
                        delta = wc * comm_delta / cr + wb * balance_delta / br
            # ---- accept (sigmoid inlined) --------------------------------- #
            n_proposals += 1
            if zero_temp:
                probability = 1.0 if delta < 0.0 else 0.0
            elif infinite_temp:
                probability = 0.5
            else:
                exponent = delta / temperature
                if exponent > 500.0:
                    probability = 0.0
                elif exponent < -500.0:
                    probability = 1.0
                else:
                    probability = 1.0 / (1.0 + exp(exponent))
            if probability >= 1.0:
                accepted = True
            elif probability <= 0.0:
                accepted = False
            else:
                accepted = dbl[pos] < probability
                pos += 1
            if accepted:
                # Apply in place, reproducing the dict-insertion order the
                # kernel walk's t2p mutations would leave.
                if kind == 1:
                    assign[task] = -1
                    occ[old_j] = -1
                    del order[vidx]
                elif kind == 2:
                    if cur >= 0:
                        occ[cur] = -1
                        order.remove(task)
                    assign[task] = new_j
                    occ[new_j] = task
                    order.append(task)
                elif kind == 3:
                    assign[occupant] = -1
                    order.remove(occupant)
                    assign[task] = new_j
                    occ[new_j] = task
                    order.append(task)
                elif kind == 4:
                    assign[task] = new_j
                    assign[occupant] = cur
                    occ[new_j] = task
                    occ[cur] = occupant
                n_accepted += 1
                cost = cost + delta
                if cost < best_cost:
                    best_cost = cost
                    best_assign = assign.copy()
                    best_order = order.copy()
        # Per-temperature resynchronization against incremental-cost drift.
        resynced = full_cost()
        if abs(resynced - cost) > annealer.resync_tolerance:
            cost = resynced
        if stopping.should_stop(outer, cost):
            outer += 1
            break
        outer += 1

    return AnnealingResult(
        best_state=PacketMapping({i: best_assign[i] for i in best_order}),
        best_cost=best_cost,
        final_state=PacketMapping({i: assign[i] for i in order}),
        final_cost=cost,
        n_iterations=outer,
        n_proposals=n_proposals,
        n_accepted=n_accepted,
        trajectory=[],
    )


# --------------------------------------------------------------------------- #
# The batched lock-step multi-replica engine
# --------------------------------------------------------------------------- #

def _stall_params(stopping) -> Optional[Tuple[int, float, int]]:
    """Extract (patience, tolerance, max_iterations) from the canonical
    ``CombinedStopping([StallStopping, MaxIterationsStopping])`` structure the
    packet annealer builds; ``None`` for anything else (scalar fallback)."""
    if type(stopping) is not CombinedStopping:
        return None
    patience = tolerance = max_iter = None
    for rule in stopping.rules:
        if type(rule) is StallStopping and patience is None:
            patience, tolerance = rule.patience, rule.tolerance
        elif type(rule) is MaxIterationsStopping and max_iter is None:
            max_iter = rule.max_iterations
        else:
            return None
    if patience is None or max_iter is None:
        return None
    return patience, tolerance, max_iter


def anneal_replicas_scalar(
    kernel: PacketKernel,
    problem,
    annealer: Annealer,
    rngs,
) -> Tuple[List[AnnealingResult], List[List[Tuple[float, float]]]]:
    """Reference multi-replica path: one scalar single-chain walk per child.

    Defines the batched contract — :func:`anneal_replicas_batched` must
    return exactly these results — and serves as the fallback for
    configurations the vectorized engine does not cover (non-sigmoid
    acceptance, exotic stopping rules, degenerate packets).  Per-temperature
    trajectories are not collected on this path.
    """
    sigmoid = type(annealer.acceptance) is BoltzmannSigmoidAcceptance
    results = []
    for r in rngs:
        if sigmoid:
            results.append(anneal_array(kernel, problem, annealer, r))
        else:
            from repro.core.packet_annealer import _anneal_indexed

            results.append(_anneal_indexed(kernel, problem, annealer, r))
    return results, [[] for _ in results]


def anneal_replicas_batched(
    kernel: PacketKernel,
    problem,
    annealer: Annealer,
    rngs,
    plan=None,
) -> Tuple[List[AnnealingResult], List[List[Tuple[float, float]]]]:
    """Anneal ``len(rngs)`` replicas in lock-step over ``(B, k)`` state matrices.

    Replica *b* consumes generator ``rngs[b]`` exactly as
    :func:`anneal_array` would, so the returned results are bit-identical to
    :func:`anneal_replicas_scalar` on the same children — only the control
    flow is shared: proposals are drawn, scored and accepted for all live
    replicas at once with vectorized gathers over the kernel tables.  The
    second return value holds one ``(temperature, cost)`` sample per replica
    per temperature step (recorded after the per-temperature resync, i.e.
    the value the stopping rule saw) — the raw material of variance studies.

    Replicas stop independently (stall patience / max steps, replicated
    vectorized); a stopped lane simply leaves the active set while the rest
    keep walking.

    With a *plan* (:class:`repro.annealing.portfolio.LanePlan`, duck-typed)
    the lanes become heterogeneous: lane *b* seeds from
    ``plan.problems[b]``, cools via ``plan.coolings[b]`` from
    ``plan.t0s[b]``, and stops against its own (mutable) entry of
    ``plan.budgets`` instead of the shared ``max_steps``.  After each
    temperature step ``plan.controller.on_step`` may cull lanes (rung
    racing) and raise the survivors' budgets in place.  Each lane still
    consumes its generator exactly like a solo :func:`anneal_array` walk
    with that lane's parameters, so culled or not, lane *b* replays as a
    scalar run capped at its recorded ``n_iterations``.
    """
    B = len(rngs)
    if B == 0:
        return [], []
    n_ready, n_idle = kernel.n_ready, kernel.n_idle
    params = _stall_params(annealer.stopping)
    if (
        n_ready == 0
        or n_idle == 0
        or type(annealer.acceptance) is not BoltzmannSigmoidAcceptance
        or (plan is None and annealer.initial_temperature is None)
        or params is None
    ):
        if plan is not None:
            raise ValueError(
                "a lane plan needs the vectorized engine: sigmoid acceptance, "
                "stall+max stopping and a non-degenerate packet"
            )
        return anneal_replicas_scalar(kernel, problem, annealer, rngs)
    patience, stall_tol, max_steps = params
    moves = annealer.moves_per_temperature
    cooling = annealer.cooling
    resync_tol = annealer.resync_tolerance
    if plan is None:
        t0 = annealer.initial_temperature
        if t0 <= 0:
            raise ValueError(f"initial temperature must be > 0, got {t0}")
        coolings = t0s = controller = None
        budgets = np.full(B, max_steps, dtype=np.int64)
    else:
        coolings = list(plan.coolings)
        t0s = [float(t) for t in plan.t0s]
        for t in t0s:
            if t <= 0:
                raise ValueError(f"initial temperature must be > 0, got {t}")
        budgets = plan.budgets  # mutated in place by the controller
        controller = plan.controller
        if len(coolings) != B or len(t0s) != B or len(budgets) != B:
            raise ValueError("lane plan arrays must have one entry per replica")

    brows_l = kernel.balance_rows
    rows_l = kernel.comm_rows
    brows = np.asarray(brows_l, dtype=np.float64)
    rows = np.asarray(rows_l, dtype=np.float64)
    wb, wc = kernel.weight_balance, kernel.weight_comm
    br, cr = kernel.balance_range, kernel.comm_range
    comm_enabled = kernel.comm_enabled

    # ---- per-lane initial state (same Generator consumption as scalar) ---- #
    assign = np.full((B, n_ready), -1, dtype=np.int32)
    occm = np.full((B, n_idle), -1, dtype=np.int32)
    orders: List[List[int]] = []
    n_assigned = np.zeros(B, dtype=np.int64)
    for b, r in enumerate(rngs):
        st = (problem if plan is None else plan.problems[b]).initial_state(r)
        o: List[int] = []
        for i, j in st.task_to_proc.items():
            assign[b, i] = j
            occm[b, j] = i
            o.append(i)
        orders.append(o)
        n_assigned[b] = len(o)

    def full_cost_lane(b: int) -> float:
        # Insertion-order accumulation, exactly like the scalar resync.
        row = assign[b].tolist()
        acc = 0
        for i in orders[b]:
            acc = acc + brows_l[i][row[i]]
        fc = 0.0
        if comm_enabled:
            for i in orders[b]:
                fc += rows_l[i][row[i]]
        return wc * fc / cr + wb * (-acc) / br

    cost = np.array([full_cost_lane(b) for b in range(B)], dtype=np.float64)
    best_cost = cost.copy()
    best_assign = assign.copy()
    best_orders = [o.copy() for o in orders]
    n_props = np.zeros(B, dtype=np.int64)
    n_acc = np.zeros(B, dtype=np.int64)
    n_iters = np.zeros(B, dtype=np.int64)
    stall = np.zeros(B, dtype=np.int64)
    last_cost = np.zeros(B, dtype=np.float64)
    have_last = np.zeros(B, dtype=bool)
    trajectories: List[List[Tuple[float, float]]] = [[] for _ in range(B)]

    # ---- per-lane pre-drawn blocks ---------------------------------------- #
    bitgens = [r.bit_generator for r in rngs]
    halves = np.full(B, -1, dtype=np.int64)  # -1 = no buffered half-word
    for b, bg in enumerate(bitgens):
        gstate = bg.state
        if gstate.get("has_uint32"):
            halves[b] = int(gstate["uinteger"])
    cap = (4 * moves + 64) * 8  # ~8 temperature blocks of worst-case draws
    raw = np.empty((B, cap), dtype=np.uint64)
    for b, bg in enumerate(bitgens):
        raw[b] = bg.random_raw(cap)
    dbl = (raw >> np.uint64(11)) * _INV_2_53
    lom = (raw & np.uint64(_M32)).astype(np.int64)
    him = (raw >> np.uint64(32)).astype(np.int64)
    # Flat views over the (B, cap) buffers: ``take`` on a flat index beats
    # two-axis fancy indexing in the per-proposal gathers, and in-place row
    # rewrites (topup) stay visible through the views.
    dbl_flat = dbl.reshape(-1)
    lom_flat = lom.reshape(-1)
    him_flat = him.reshape(-1)
    cur = np.zeros(B, dtype=np.int64)

    def topup(lanes) -> None:
        need = 4 * moves + 64
        for b in lanes.tolist():
            c = int(cur[b])
            if cap - c >= need:
                continue
            rem = cap - c
            if rem:
                raw[b, :rem] = raw[b, c:].copy()
            raw[b, rem:] = bitgens[b].random_raw(c)
            row = raw[b]
            dbl[b] = (row >> np.uint64(11)) * _INV_2_53
            lom[b] = (row & np.uint64(_M32)).astype(np.int64)
            him[b] = (row >> np.uint64(32)).astype(np.int64)
            cur[b] = 0

    def next_u32(b: int) -> int:
        # Scalar slow path (Lemire rejections): same half-word discipline.
        h = int(halves[b])
        if h >= 0:
            halves[b] = -1
            return h
        if cur[b] >= cap:  # pragma: no cover - needs a rejection storm
            w = int(bitgens[b].random_raw(1)[0])
            halves[b] = w >> 32
            return w & _M32
        u = int(lom[b, cur[b]])
        halves[b] = int(him[b, cur[b]])
        cur[b] += 1
        return u

    def draw_ints(lanes: np.ndarray, nvec: np.ndarray) -> np.ndarray:
        """Vectorized ``integers(0, n)`` across lanes (per-lane bounds)."""
        multi = nvec > 1  # n == 1 consumes nothing and returns 0
        partial = not multi.all()
        if partial:
            if not multi.any():
                return np.zeros(lanes.size, dtype=np.int64)
            ml = lanes[multi]
            n = nvec[multi].astype(np.int64)
        else:
            ml = lanes
            n = nvec
        h = halves[ml]
        has_h = h >= 0
        if has_h.any():
            u32 = np.where(has_h, h, 0)
            fresh = ml[~has_h]
            if fresh.size:
                fidx = fresh * cap + cur[fresh]
                u32[~has_h] = lom_flat.take(fidx)
                halves[fresh] = him_flat.take(fidx)
                cur[fresh] += 1
            halves[ml[has_h]] = -1
        else:
            fidx = ml * cap + cur[ml]
            u32 = lom_flat.take(fidx)
            halves[ml] = him_flat.take(fidx)
            cur[ml] += 1
        m = u32 * n
        leftover = m & _M32
        rej = leftover < n
        if rej.any():  # pragma: no cover - ~2**-26 per draw
            for k in np.flatnonzero(rej).tolist():
                b = int(ml[k])
                nn = int(n[k])
                lv = int(leftover[k])
                mm = int(m[k])
                threshold = (4294967296 - nn) % nn
                while lv < threshold:
                    u = next_u32(b)
                    mm = u * nn
                    lv = mm & _M32
                m[k] = mm
        if not partial:
            return m >> 32
        out = np.zeros(lanes.size, dtype=np.int64)
        out[multi] = m >> 32
        return out

    # ---- the lock-step walk ----------------------------------------------- #
    active = np.arange(B)
    exp = math.exp
    n_ready_vec = np.full(B, n_ready, dtype=np.int64)
    outer = 0
    while active.size:
        if plan is None:
            temperature = cooling.temperature(outer, t0)
            if temperature < 0:
                raise ValueError(f"temperature must be >= 0, got {temperature}")
            zero_temp = temperature == 0.0
            infinite_temp = math.isinf(temperature)
            lane_temps = None
        else:
            lane_temps = {}
            for b in active.tolist():
                tb = coolings[b].temperature(outer, t0s[b])
                if tb < 0:
                    raise ValueError(f"temperature must be >= 0, got {tb}")
                lane_temps[b] = tb
        topup(active)
        act = active
        A = act.size
        act_list = act.tolist()
        act_base = act * cap
        bound_ready = n_ready_vec[:A]
        # Every active lane evaluates every proposal of the block (hoisted
        # out of the per-proposal loop; identical to the scalar counters).
        n_props[act] += moves
        for _ in range(moves):
            # -- drop check: lanes with a non-empty mapping consume a double
            na = n_assigned[act]
            has = na > 0
            drop = np.zeros(A, dtype=bool)
            if has.all():
                u = dbl_flat.take(act_base + cur[act])
                cur[act] += 1
                drop = u < _DROP_PROBABILITY
            elif has.any():
                du = act[has]
                u = dbl_flat.take(du * cap + cur[du])
                cur[du] += 1
                drop[has] = u < _DROP_PROBABILITY
            # -- first bounded draw, merged across branches: the drop victim
            #    index (bound n_assigned) or the proposed task (bound n_ready)
            drop_idx = drop.nonzero()[0]
            dropping = drop_idx.size > 0
            bound1 = np.where(drop, na, bound_ready) if dropping else bound_ready
            d1 = draw_ints(act, bound1)
            task = d1
            vidx = d1  # drop-lane interpretation (victim position)
            if dropping:
                task = d1.copy()
                task[drop_idx] = [
                    orders[act_list[k]][v]
                    for k, v in zip(drop_idx.tolist(), d1[drop_idx].tolist())
                ]
            # current processor of the selected task (drop lanes: old_j)
            cp = assign[act, task]
            # -- second bounded draw, merged: destination processor (bound
            #    n_idle for unselected tasks, n_idle - 1 skipping the current
            #    slot otherwise; n_idle == 1 with a current slot draws nothing)
            unsel = cp < 0
            eligible = ~drop & (unsel | (n_idle > 1))
            newj = np.full(A, -1, dtype=np.int64)
            el_idx = eligible.nonzero()[0]
            if el_idx.size:
                cpe = cp[el_idx]
                une = cpe < 0
                d2 = draw_ints(act[el_idx], np.where(une, n_idle, n_idle - 1))
                d2 = d2 + (~une & (d2 >= cpe))
                newj[el_idx] = d2
            # -- classify moves and evaluate deltas from the kernel tables
            delta = np.zeros(A, dtype=np.float64)
            kind = np.zeros(A, dtype=np.int8)
            occ_t = np.full(A, -1, dtype=np.int64)
            if dropping:
                tt = task[drop_idx]
                oj = cp[drop_idx]
                bd = 0.0 + brows[tt, oj]
                cd = 0.0 - rows[tt, oj]
                delta[drop_idx] = wc * cd / cr + wb * bd / br
                kind[drop_idx] = 1
            mv = newj >= 0
            mv_idx = mv.nonzero()[0]
            if mv_idx.size:
                t2 = task[mv_idx]
                c2 = cp[mv_idx]
                j2 = newj[mv_idx]
                oc = occm[act[mv_idx], j2].astype(np.int64)
                occ_t[mv_idx] = oc
                free = oc < 0
                hascur = c2 >= 0
                if free.all():
                    k2m = None  # all moves land on free processors
                    tk, jk = t2, j2
                    csafe = np.where(hascur, c2, 0)
                    bd = np.where(hascur, 0.0 + brows[tk, csafe], 0.0)
                    cd = np.where(hascur, 0.0 - rows[tk, csafe], 0.0)
                    bd = bd - brows[tk, jk]
                    cd = cd + rows[tk, jk]
                    delta[mv_idx] = wc * cd / cr + wb * bd / br
                    kind[mv_idx] = 2
                else:
                    k2m = free
                    if k2m.any():
                        tk, jk = t2[k2m], j2[k2m]
                        hc = hascur[k2m]
                        csafe = np.where(hc, c2[k2m], 0)
                        bd = np.where(hc, 0.0 + brows[tk, csafe], 0.0)
                        cd = np.where(hc, 0.0 - rows[tk, csafe], 0.0)
                        bd = bd - brows[tk, jk]
                        cd = cd + rows[tk, jk]
                        delta[mv_idx[k2m]] = wc * cd / cr + wb * bd / br
                        kind[mv_idx[k2m]] = 2
                    k3m = ~free & ~hascur
                    if k3m.any():
                        tk, jk, ok = t2[k3m], j2[k3m], oc[k3m]
                        bd = 0.0 + brows[ok, jk]
                        cd = 0.0 - rows[ok, jk]
                        bd = bd - brows[tk, jk]
                        cd = cd + rows[tk, jk]
                        delta[mv_idx[k3m]] = wc * cd / cr + wb * bd / br
                        kind[mv_idx[k3m]] = 3
                    k4m = ~free & hascur
                    if k4m.any():
                        tk, jk, ok, ck = t2[k4m], j2[k4m], oc[k4m], c2[k4m]
                        bd = 0.0 + brows[tk, ck]
                        cd = 0.0 - rows[tk, ck]
                        bd = bd - brows[tk, jk]
                        cd = cd + rows[tk, jk]
                        bd = bd + brows[ok, jk]
                        cd = cd - rows[ok, jk]
                        bd = bd - brows[ok, ck]
                        cd = cd + rows[ok, ck]
                        delta[mv_idx[k4m]] = wc * cd / cr + wb * bd / br
                        kind[mv_idx[k4m]] = 4
            # -- acceptance (sigmoid; math.exp per lane keeps libm parity
            #    with the scalar walk — numpy's vectorized exp may differ in
            #    the last ulp on some builds, which would break bit-identity)
            if lane_temps is not None:
                probs = []
                for k, d in enumerate(delta.tolist()):
                    tb = lane_temps[act_list[k]]
                    if tb == 0.0:
                        probs.append(1.0 if d < 0.0 else 0.0)
                    elif math.isinf(tb):
                        probs.append(0.5)
                    else:
                        e = d / tb
                        probs.append(
                            1.0 / (1.0 + exp(e))
                            if -500.0 <= e <= 500.0
                            else (0.0 if e > 500.0 else 1.0)
                        )
                prob = np.asarray(probs)
            elif zero_temp:
                prob = np.where(delta < 0.0, 1.0, 0.0)
            elif infinite_temp:
                prob = np.full(A, 0.5)
            else:
                prob = np.asarray(
                    [
                        1.0 / (1.0 + exp(e))
                        if -500.0 <= e <= 500.0
                        else (0.0 if e > 500.0 else 1.0)
                        for e in (delta / temperature).tolist()
                    ]
                )
            accepted = prob >= 1.0
            mid = (prob > 0.0) & (prob < 1.0)
            ml = act[mid]
            if ml.size:
                u = dbl_flat.take(ml * cap + cur[ml])
                cur[ml] += 1
                accepted[mid] = u < prob[mid]
            acc_idx = accepted.nonzero()[0]
            if acc_idx.size:
                lanes = act[acc_idx]
                n_acc[lanes] += 1
                cost[lanes] = cost[lanes] + delta[acc_idx]
                for k in acc_idx.tolist():
                    kd = int(kind[k])
                    if kd == 0:
                        continue
                    b = act_list[k]
                    t = int(task[k])
                    if kd == 1:
                        assign[b, t] = -1
                        occm[b, int(cp[k])] = -1
                        del orders[b][int(vidx[k])]
                        n_assigned[b] -= 1
                    elif kd == 2:
                        cp2 = int(cp[k])
                        nj2 = int(newj[k])
                        if cp2 >= 0:
                            occm[b, cp2] = -1
                            orders[b].remove(t)
                        else:
                            n_assigned[b] += 1
                        assign[b, t] = nj2
                        occm[b, nj2] = t
                        orders[b].append(t)
                    elif kd == 3:
                        oc2 = int(occ_t[k])
                        nj2 = int(newj[k])
                        assign[b, oc2] = -1
                        orders[b].remove(oc2)
                        assign[b, t] = nj2
                        occm[b, nj2] = t
                        orders[b].append(t)
                    else:
                        cp2 = int(cp[k])
                        nj2 = int(newj[k])
                        oc2 = int(occ_t[k])
                        assign[b, t] = nj2
                        assign[b, oc2] = cp2
                        occm[b, nj2] = t
                        occm[b, cp2] = oc2
                imp = lanes[cost[lanes] < best_cost[lanes]]
                if imp.size:
                    best_cost[imp] = cost[imp]
                    best_assign[imp] = assign[imp]
                    for b in imp.tolist():
                        best_orders[b] = orders[b].copy()
        # -- per-temperature: resync, trajectory sample, stopping
        for b in active.tolist():
            resynced = full_cost_lane(b)
            if abs(resynced - float(cost[b])) > resync_tol:
                cost[b] = resynced
            trajectories[b].append(
                (temperature if lane_temps is None else lane_temps[b], float(cost[b]))
            )
        c = cost[active]
        eq = have_last[active] & (np.abs(c - last_cost[active]) <= stall_tol)
        stall[active] = np.where(eq, stall[active] + 1, 0)
        last_cost[active] = c
        have_last[active] = True
        stop = (stall[active] >= patience) | (outer + 1 >= budgets[active])
        stopped = active[stop]
        if stopped.size:
            n_iters[stopped] = outer + 1
            active = active[~stop]
        if controller is not None and active.size:
            culled = controller.on_step(
                outer + 1, active.tolist(), budgets, n_iters, trajectories
            )
            if culled:
                n_iters[np.asarray(culled)] = outer + 1
                active = active[~np.isin(active, culled)]
        outer += 1

    results = []
    for b in range(B):
        row = best_assign[b]
        best_map = {int(i): int(row[i]) for i in best_orders[b]}
        frow = assign[b]
        final_map = {int(i): int(frow[i]) for i in orders[b]}
        results.append(
            AnnealingResult(
                best_state=PacketMapping(best_map),
                best_cost=float(best_cost[b]),
                final_state=PacketMapping(final_map),
                final_cost=float(cost[b]),
                n_iterations=int(n_iters[b]),
                n_proposals=int(n_props[b]),
                n_accepted=int(n_acc[b]),
                trajectory=[],
            )
        )
    return results, trajectories


# --------------------------------------------------------------------------- #
# FastPacket -> index-space packet + kernel (the SA fast_assign front end)
# --------------------------------------------------------------------------- #

def compile_fast_packet(
    fast_packet,
    weight_balance: float = 0.5,
    weight_comm: float = 0.5,
) -> Tuple[AnnealingPacket, PacketKernel]:
    """Lower one fast-engine epoch into an annealing packet and its kernel.

    *fast_packet* is a :class:`~repro.sim.compile.FastPacket` (duck-typed to
    avoid a core → sim import).  Ready tasks keep their dense graph indices
    as identifiers, predecessor placements come straight off the scenario's
    CSR arrays, and the kernel's communication table is gathered from the
    precompiled per-edge equation-4 tensor — one predecessor row at a time,
    the accumulation order of :func:`~repro.comm.model.comm_cost_table` — so
    the tables (and therefore every annealing decision) are bit-identical to
    the ones the materialized-context path would build.
    """
    sc = fast_packet.scenario
    machine = sc.machine
    ready = list(fast_packet.ready)
    idle = list(fast_packet.idle)
    levels_list = sc.levels_list
    indptr = sc.pred_indptr_list
    pred_ids = sc.pred_ids_list
    pred_weights = sc.pred_weights
    assigned = fast_packet.assigned_proc
    placement = {}
    for ti in ready:
        entries = []
        for e in range(indptr[ti], indptr[ti + 1]):
            p = pred_ids[e]
            entries.append((p, int(assigned[p]), float(pred_weights[e])))
        placement[ti] = tuple(entries)
    packet = AnnealingPacket(
        time=fast_packet.time,
        ready_tasks=tuple(ready),
        idle_processors=tuple(idle),
        levels={ti: levels_list[ti] for ti in ready},
        predecessor_placement=placement,
    )
    comm_model = sc.comm_model
    table = np.zeros((len(ready), len(idle)), dtype=np.float64)
    if comm_model.enabled and sc._pred_costs is not None:
        procs = np.asarray(idle, dtype=np.intp)
        pc = sc._pred_costs
        for i, ti in enumerate(ready):
            row = table[i]
            for e in range(indptr[ti], indptr[ti + 1]):
                row += pc[e, int(assigned[pred_ids[e]]), procs]
    kernel = PacketKernel.from_tables(
        packet, machine, comm_model, table, weight_balance, weight_comm
    )
    return packet, kernel
