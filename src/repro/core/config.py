"""Configuration of the simulated-annealing scheduler.

:class:`SAConfig` gathers every tunable of the paper's algorithm: the cost
weights ``w_b``/``w_c`` (eq. 6), the cooling schedule, the acceptance rule,
the per-packet iteration budget and stall patience (§6a), the initial mapping
strategy and the random seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Union

from repro.annealing.acceptance import AcceptanceRule, BoltzmannSigmoidAcceptance
from repro.annealing.cooling import CoolingSchedule, GeometricCooling
from repro.annealing.portfolio import PortfolioConfig
from repro.exceptions import ConfigurationError
from repro.utils.rng import SeedLike

__all__ = ["SAConfig"]

_INIT_CHOICES = ("hlf", "random", "empty")
_WALK_CHOICES = ("array", "kernel")


@dataclass
class SAConfig:
    """Tunables of the staged simulated-annealing scheduler.

    Attributes
    ----------
    weight_balance, weight_comm:
        The cost weights ``w_b`` and ``w_c`` of equation 6.  They must be
        non-negative and sum to 1 (the paper uses 0.5 / 0.5 for Figure 1 and
        tunes them per program for the best speedup).
    initial_temperature:
        Starting temperature of each packet annealing.  The packet cost is
        normalized to order 1, so the default of 1.0 starts with nearly
        random acceptance and the geometric schedule brings it down quickly.
    cooling:
        Cooling schedule (default geometric, alpha = 0.9).
    acceptance:
        Acceptance rule (default the paper's sigmoid Boltzmann, eq. 1).
    moves_per_temperature:
        Inner-loop proposals per temperature step.  ``None`` scales with the
        packet size (roughly two proposals per candidate, between 8 and 64),
        staying close to the per-packet iteration economy visible in the
        paper's Figure 1.
    max_temperature_steps:
        The preset maximum number of outer iterations ``N_I``.
    stall_patience:
        Stop a packet's annealing after this many consecutive temperature
        steps without cost change (the paper uses 5).
    initial_mapping:
        ``"hlf"`` — seed with the greedy highest-level-first mapping (default;
        guarantees the annealer starts from the baseline's choice and can only
        improve its packet cost), ``"random"`` — a random injective mapping,
        ``"empty"`` — start with no task selected.
    seed:
        Seed for all stochastic decisions of the scheduler (packet RNGs are
        spawned from it so results are reproducible end-to-end).
    record_trajectories:
        Keep the full cost trajectory of every packet (needed only for the
        Figure-1 reproduction; off by default to keep memory small).
    compiled:
        Anneal over the precompiled packet kernel (dense cost tables; the
        default).  ``False`` selects the original per-call cost evaluation —
        bit-identical results, kept as the reference for equivalence tests
        and as an escape hatch for exotic cost models.
    walk:
        Which compiled walk drives the inner loop: ``"array"`` (default) —
        the array-native walk of :mod:`repro.core.array_annealer` (flat
        index state, pre-drawn per-temperature draw blocks); ``"kernel"`` —
        the PR-1 fused dict walk, kept as the differential oracle.  Both are
        bit-identical for a fixed seed; non-sigmoid acceptance rules fall
        back to the kernel walk automatically.  Ignored when
        ``compiled=False``.
    replicas:
        Number of independent annealing replicas per packet (multi-start
        chains).  ``1`` (default) is the single-chain walk; ``B > 1`` runs B
        lock-stepped replicas with per-replica child streams
        (:func:`repro.utils.rng.split`) and commits the best replica's
        mapping, reporting per-replica statistics for variance studies.
    portfolio:
        Anytime portfolio mode (:class:`repro.annealing.portfolio.PortfolioConfig`,
        or an ``int`` lane count for the default axes).  Runs heterogeneous
        lanes (cooling x initial assignment x temperature scale) in the
        lock-step batched engine with successive-halving racing over the
        recorded per-temperature costs; culled lanes donate their remaining
        draw budget to the survivors.  Mutually exclusive with
        ``replicas > 1``; requires the compiled sigmoid array walk (the only
        engine with per-lane budget masks).
    """

    weight_balance: float = 0.5
    weight_comm: float = 0.5
    initial_temperature: float = 1.0
    cooling: CoolingSchedule = field(default_factory=lambda: GeometricCooling(alpha=0.9))
    acceptance: AcceptanceRule = field(default_factory=BoltzmannSigmoidAcceptance)
    moves_per_temperature: Optional[int] = None
    max_temperature_steps: int = 40
    stall_patience: int = 5
    initial_mapping: str = "hlf"
    seed: SeedLike = None
    record_trajectories: bool = False
    compiled: bool = True
    walk: str = "array"
    replicas: int = 1
    portfolio: Optional[Union[int, PortfolioConfig]] = None

    def __post_init__(self) -> None:
        if self.weight_balance < 0 or self.weight_comm < 0:
            raise ConfigurationError(
                f"cost weights must be non-negative, got w_b={self.weight_balance}, "
                f"w_c={self.weight_comm}"
            )
        total = self.weight_balance + self.weight_comm
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"cost weights must sum to 1 (paper constraint w_b + w_c = 1), got {total}"
            )
        if self.initial_temperature <= 0:
            raise ConfigurationError(
                f"initial_temperature must be > 0, got {self.initial_temperature}"
            )
        if self.moves_per_temperature is not None and self.moves_per_temperature < 1:
            raise ConfigurationError(
                f"moves_per_temperature must be >= 1 or None, got {self.moves_per_temperature}"
            )
        if self.max_temperature_steps < 1:
            raise ConfigurationError(
                f"max_temperature_steps must be >= 1, got {self.max_temperature_steps}"
            )
        if self.stall_patience < 1:
            raise ConfigurationError(
                f"stall_patience must be >= 1, got {self.stall_patience}"
            )
        if self.initial_mapping not in _INIT_CHOICES:
            raise ConfigurationError(
                f"initial_mapping must be one of {_INIT_CHOICES}, got {self.initial_mapping!r}"
            )
        if self.walk not in _WALK_CHOICES:
            raise ConfigurationError(
                f"walk must be one of {_WALK_CHOICES}, got {self.walk!r}"
            )
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {self.replicas}"
            )
        if self.portfolio is not None:
            if isinstance(self.portfolio, int):
                self.portfolio = PortfolioConfig(lanes=self.portfolio)
            elif not isinstance(self.portfolio, PortfolioConfig):
                raise ConfigurationError(
                    f"portfolio must be a PortfolioConfig, an int lane count "
                    f"or None, got {self.portfolio!r}"
                )
            if self.replicas > 1:
                raise ConfigurationError(
                    "portfolio and replicas > 1 are mutually exclusive "
                    "(a portfolio already runs multiple lanes)"
                )
            if type(self.acceptance) is not BoltzmannSigmoidAcceptance:
                raise ConfigurationError(
                    "portfolio mode requires the sigmoid acceptance rule "
                    "(the batched engine's only acceptance kernel)"
                )
            if not self.compiled or self.walk != "array":
                raise ConfigurationError(
                    "portfolio mode requires compiled=True and walk='array' "
                    "(per-lane budget masks exist only in the array engine)"
                )

    def moves_for_packet(self, n_ready: int, n_idle: int) -> int:
        """Inner-loop proposals per temperature for a packet of the given size.

        The default scales with the packet size but stays close to the
        paper's economy (Figure 1 shows on the order of 100–150 proposals for
        a 15-candidate packet): one to two proposals per candidate per
        temperature step.
        """
        if self.moves_per_temperature is not None:
            return self.moves_per_temperature
        return max(8, min(2 * max(n_ready, n_idle), 64))

    def with_weights(self, weight_balance: float, weight_comm: float) -> "SAConfig":
        """Return a copy with different cost weights (used by the weight ablation)."""
        return replace(self, weight_balance=weight_balance, weight_comm=weight_comm)

    def with_replicas(self, replicas: int) -> "SAConfig":
        """Return a copy annealing *replicas* multi-start chains per packet."""
        return replace(self, replicas=replicas)

    def with_portfolio(
        self, portfolio: Union[int, PortfolioConfig]
    ) -> "SAConfig":
        """Return a copy running the anytime lane portfolio per packet."""
        return replace(self, portfolio=portfolio, replicas=1)

    @classmethod
    def paper_defaults(cls, seed: SeedLike = None) -> "SAConfig":
        """The configuration used for the paper-reproduction experiments.

        Equal weights (as in Figure 1), sigmoid acceptance, geometric cooling,
        the paper's five-iteration stall rule and a packet-size-scaled inner
        loop.
        """
        return cls(
            weight_balance=0.5,
            weight_comm=0.5,
            initial_temperature=1.0,
            cooling=GeometricCooling(alpha=0.9),
            acceptance=BoltzmannSigmoidAcceptance(),
            moves_per_temperature=None,
            max_temperature_steps=40,
            stall_patience=5,
            initial_mapping="hlf",
            seed=seed,
        )
