"""The staged simulated-annealing scheduling policy (paper §5).

``SAScheduler`` is a :class:`~repro.schedulers.base.SchedulingPolicy`: the
simulator calls :meth:`assign` at every assignment epoch, the scheduler forms
an annealing packet from the context, anneals it, and commits the best
mapping found.  Per-packet statistics (candidates, free processors,
iterations, cost improvements) are accumulated for the §6a analysis and the
Figure 1 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, Hashable, List, Optional, Union

from repro.annealing.portfolio import PortfolioConfig
from repro.core.array_annealer import compile_fast_packet
from repro.core.config import SAConfig
from repro.core.packet import AnnealingPacket
from repro.core.packet_annealer import PacketAnnealer, PacketAnnealingOutcome
from repro.schedulers.base import PacketContext, SchedulingPolicy
from repro.schedulers.etf import ETFScheduler
from repro.utils.rng import as_rng, spawn_rng

__all__ = ["SAScheduler", "PacketStats"]

TaskId = Hashable
ProcId = int


@dataclass(frozen=True)
class PacketStats:
    """Summary of one annealing packet, as discussed in the paper's §6a."""

    time: float
    n_ready: int
    n_idle: int
    n_assigned: int
    n_proposals: int
    n_accepted: int
    n_temperature_steps: int
    initial_cost: float
    best_cost: float

    @property
    def improvement(self) -> float:
        return self.initial_cost - self.best_cost


class SAScheduler(SchedulingPolicy):
    """Directed-taskgraph scheduling by per-packet simulated annealing.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.SAConfig`; defaults to the paper's
        configuration (equal weights, sigmoid acceptance, geometric cooling,
        5-iteration stall rule).

    Notes
    -----
    The scheduler is stateful across a run: it keeps per-packet statistics
    and, when ``config.record_trajectories`` is set, the full cost trajectory
    of every packet.  :meth:`reset` clears that state and re-seeds the RNG so
    that repeated simulations with the same seed are identical.
    """

    def __init__(self, config: Optional[SAConfig] = None) -> None:
        self.config = config or SAConfig.paper_defaults()
        self.name = "SA"
        self._annealer = PacketAnnealer(self.config)
        self._rng = as_rng(self.config.seed)
        self.packet_stats: List[PacketStats] = []
        self.packet_outcomes: List[PacketAnnealingOutcome] = []
        self._committed: Dict[TaskId, ProcId] = {}
        self._last_outcome: Optional[PacketAnnealingOutcome] = None
        #: optional observer called with ``best_so_far(include_assignment=False)``
        #: after every committed packet — the anytime progress channel the
        #: scheduling service's long-running jobs report through.
        self.anytime_hook: Optional[Callable[[Dict[str, object]], None]] = None

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Clear accumulated statistics and re-seed the internal RNG."""
        self._rng = as_rng(self.config.seed)
        self.packet_stats = []
        self.packet_outcomes = []
        self._committed = {}
        self._last_outcome = None

    def with_replicas(self, replicas: int) -> "SAScheduler":
        """A new scheduler annealing *replicas* multi-start chains per packet.

        Fresh state and a fresh RNG; the original scheduler is untouched.
        The hook :class:`~repro.sim.engine.Simulator` uses for its
        ``replicas=`` knob.
        """
        return SAScheduler(replace(self.config, replicas=replicas))

    def with_portfolio(
        self, portfolio: Union[int, PortfolioConfig]
    ) -> "SAScheduler":
        """A new scheduler racing an anytime lane portfolio per packet.

        Fresh state and a fresh RNG; the original scheduler is untouched.
        The hook :class:`~repro.sim.engine.Simulator` uses for its
        ``portfolio=`` knob.  The ``anytime_hook`` observer carries over so
        progress streaming survives the simulator's internal policy copy.
        """
        scheduler = SAScheduler(
            replace(self.config, portfolio=portfolio, replicas=1)
        )
        scheduler.anytime_hook = self.anytime_hook
        return scheduler

    # ------------------------------------------------------------------ #
    def _record_outcome(
        self, time: float, packet: AnnealingPacket, outcome: PacketAnnealingOutcome
    ) -> None:
        self.packet_stats.append(
            PacketStats(
                time=time,
                n_ready=packet.n_ready,
                n_idle=packet.n_idle,
                n_assigned=len(outcome.assignment),
                n_proposals=outcome.n_proposals,
                n_accepted=outcome.n_accepted,
                n_temperature_steps=outcome.n_temperature_steps,
                initial_cost=outcome.initial_cost,
                best_cost=outcome.best_cost,
            )
        )
        if self.config.record_trajectories:
            self.packet_outcomes.append(outcome)
        self._committed.update(outcome.assignment)
        self._last_outcome = outcome
        if self.anytime_hook is not None:
            self.anytime_hook(self.best_so_far(include_assignment=False))

    # ------------------------------------------------------------------ #
    def best_so_far(self, include_assignment: bool = True) -> Dict[str, object]:
        """The anytime snapshot: everything committed up to this moment.

        Safe to call mid-run (between packets): cumulative packet counters,
        the schedule assembled so far and — on portfolio runs — the last
        packet's champion summary (winning lane, its seed strategy, culling
        and budget-reallocation counters).  ``include_assignment=False``
        drops the task-to-processor mapping, leaving a flat dict of scalars
        that fits a progress message.
        """
        stats = self.packet_stats
        snapshot: Dict[str, object] = {
            "n_packets": len(stats),
            "n_tasks_assigned": len(self._committed),
            "total_initial_cost": float(sum(s.initial_cost for s in stats)),
            "total_best_cost": float(sum(s.best_cost for s in stats)),
            "total_improvement": float(sum(s.improvement for s in stats)),
        }
        last = self._last_outcome
        if last is not None and last.portfolio is not None:
            snapshot["last_packet"] = last.portfolio.best_so_far()
        if include_assignment:
            snapshot["assignment"] = dict(self._committed)
        return snapshot

    def _portfolio_seeds(
        self, compute
    ) -> Optional[Dict[str, Dict[TaskId, ProcId]]]:
        """The external seed assignments portfolio lanes may start from.

        ``compute`` produces the ETF solution for the current packet; it is
        only invoked when the portfolio actually has an ``"etf"`` lane.  ETF
        is deterministic and engine-bit-identical, so seeding from it keeps
        the object/fast differential contract intact.
        """
        portfolio = self.config.portfolio
        if portfolio is None or not portfolio.wants("etf"):
            return None
        return {"etf": compute()}

    # ------------------------------------------------------------------ #
    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        packet = AnnealingPacket.from_context(ctx)
        seeds = self._portfolio_seeds(lambda: ETFScheduler().assign(ctx))
        packet_rng = spawn_rng(self._rng, 1)[0]
        outcome = self._annealer.anneal(
            packet,
            ctx.machine,
            comm_model=ctx.comm_model,
            rng=packet_rng,
            seed_assignments=seeds,
        )
        if not outcome.assignment:
            # Progress guarantee: the paper's outer loop runs "until all tasks
            # are assigned", so an epoch with ready tasks and idle processors
            # must place at least one task.  A degenerate cost configuration
            # (e.g. a pure-communication cost, w_b = 0) can make the empty
            # mapping the cost optimum; fall back to the highest-level ready
            # task on the first idle processor in that case.
            top_task = max(ctx.ready_tasks, key=lambda t: ctx.levels[t])
            outcome.assignment = {top_task: ctx.idle_processors[0]}
        self._record_outcome(ctx.time, packet, outcome)
        return outcome.assignment

    # ------------------------------------------------------------------ #
    def fast_assign(self, packet) -> Optional[Dict[int, ProcId]]:
        """Index-space epoch assignment over the compiled scenario tables.

        Lowers the :class:`~repro.sim.compile.FastPacket` into an annealing
        packet + kernel (:func:`~repro.core.array_annealer.compile_fast_packet`
        gathers the equation-4 table from the scenario's per-edge tensor) and
        runs the same spawn / split / walk sequence as :meth:`assign`, so a
        fast-engine run commits bit-identical mappings and consumes the
        scheduler RNG identically.  Declines (before touching any stochastic
        state) for the reference path (``compiled=False``) and for
        trajectory-recording runs, which need the materialized context.
        """
        cfg = self.config
        if not cfg.compiled or cfg.record_trajectories:
            return None
        if packet.n_idle == 0 or packet.n_ready == 0:
            return {}
        apacket, kernel = compile_fast_packet(
            packet, cfg.weight_balance, cfg.weight_comm
        )
        seeds = self._portfolio_seeds(lambda: ETFScheduler().fast_assign(packet))
        packet_rng = spawn_rng(self._rng, 1)[0]
        outcome = self._annealer.anneal_compiled(
            apacket, kernel, packet_rng, seed_assignments=seeds
        )
        if not outcome.assignment:
            # Progress guarantee, mirroring assign(): highest-level ready
            # task (first in ready order on ties) onto the first idle slot.
            levels = packet.scenario.levels_list
            top_task = max(packet.ready, key=lambda ti: levels[ti])
            outcome.assignment = {top_task: packet.idle[0]}
        self._record_outcome(packet.time, apacket, outcome)
        return outcome.assignment

    # ------------------------------------------------------------------ #
    # Aggregate statistics (paper §6a narrative)
    # ------------------------------------------------------------------ #
    @property
    def n_packets(self) -> int:
        """Number of annealing packets formed so far."""
        return len(self.packet_stats)

    def average_candidates_per_packet(self) -> float:
        """Average number of ready tasks per packet (≈15 for the paper's NE run)."""
        if not self.packet_stats:
            return 0.0
        return sum(s.n_ready for s in self.packet_stats) / len(self.packet_stats)

    def average_idle_processors_per_packet(self) -> float:
        """Average number of free processors per packet (≈1.46 for the paper's NE run)."""
        if not self.packet_stats:
            return 0.0
        return sum(s.n_idle for s in self.packet_stats) / len(self.packet_stats)

    def total_proposals(self) -> int:
        return sum(s.n_proposals for s in self.packet_stats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SAScheduler(w_b={self.config.weight_balance}, w_c={self.config.weight_comm})"
