"""The staged simulated-annealing scheduling policy (paper §5).

``SAScheduler`` is a :class:`~repro.schedulers.base.SchedulingPolicy`: the
simulator calls :meth:`assign` at every assignment epoch, the scheduler forms
an annealing packet from the context, anneals it, and commits the best
mapping found.  Per-packet statistics (candidates, free processors,
iterations, cost improvements) are accumulated for the §6a analysis and the
Figure 1 reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Optional

from repro.core.array_annealer import compile_fast_packet
from repro.core.config import SAConfig
from repro.core.packet import AnnealingPacket
from repro.core.packet_annealer import PacketAnnealer, PacketAnnealingOutcome
from repro.schedulers.base import PacketContext, SchedulingPolicy
from repro.utils.rng import as_rng, spawn_rng

__all__ = ["SAScheduler", "PacketStats"]

TaskId = Hashable
ProcId = int


@dataclass(frozen=True)
class PacketStats:
    """Summary of one annealing packet, as discussed in the paper's §6a."""

    time: float
    n_ready: int
    n_idle: int
    n_assigned: int
    n_proposals: int
    n_accepted: int
    n_temperature_steps: int
    initial_cost: float
    best_cost: float

    @property
    def improvement(self) -> float:
        return self.initial_cost - self.best_cost


class SAScheduler(SchedulingPolicy):
    """Directed-taskgraph scheduling by per-packet simulated annealing.

    Parameters
    ----------
    config:
        The :class:`~repro.core.config.SAConfig`; defaults to the paper's
        configuration (equal weights, sigmoid acceptance, geometric cooling,
        5-iteration stall rule).

    Notes
    -----
    The scheduler is stateful across a run: it keeps per-packet statistics
    and, when ``config.record_trajectories`` is set, the full cost trajectory
    of every packet.  :meth:`reset` clears that state and re-seeds the RNG so
    that repeated simulations with the same seed are identical.
    """

    def __init__(self, config: Optional[SAConfig] = None) -> None:
        self.config = config or SAConfig.paper_defaults()
        self.name = "SA"
        self._annealer = PacketAnnealer(self.config)
        self._rng = as_rng(self.config.seed)
        self.packet_stats: List[PacketStats] = []
        self.packet_outcomes: List[PacketAnnealingOutcome] = []

    # ------------------------------------------------------------------ #
    def reset(self) -> None:
        """Clear accumulated statistics and re-seed the internal RNG."""
        self._rng = as_rng(self.config.seed)
        self.packet_stats = []
        self.packet_outcomes = []

    def with_replicas(self, replicas: int) -> "SAScheduler":
        """A new scheduler annealing *replicas* multi-start chains per packet.

        Fresh state and a fresh RNG; the original scheduler is untouched.
        The hook :class:`~repro.sim.engine.Simulator` uses for its
        ``replicas=`` knob.
        """
        return SAScheduler(replace(self.config, replicas=replicas))

    # ------------------------------------------------------------------ #
    def _record_outcome(
        self, time: float, packet: AnnealingPacket, outcome: PacketAnnealingOutcome
    ) -> None:
        self.packet_stats.append(
            PacketStats(
                time=time,
                n_ready=packet.n_ready,
                n_idle=packet.n_idle,
                n_assigned=len(outcome.assignment),
                n_proposals=outcome.n_proposals,
                n_accepted=outcome.n_accepted,
                n_temperature_steps=outcome.n_temperature_steps,
                initial_cost=outcome.initial_cost,
                best_cost=outcome.best_cost,
            )
        )
        if self.config.record_trajectories:
            self.packet_outcomes.append(outcome)

    # ------------------------------------------------------------------ #
    def assign(self, ctx: PacketContext) -> Dict[TaskId, ProcId]:
        if ctx.n_idle == 0 or ctx.n_ready == 0:
            return {}
        packet = AnnealingPacket.from_context(ctx)
        packet_rng = spawn_rng(self._rng, 1)[0]
        outcome = self._annealer.anneal(
            packet,
            ctx.machine,
            comm_model=ctx.comm_model,
            rng=packet_rng,
        )
        if not outcome.assignment:
            # Progress guarantee: the paper's outer loop runs "until all tasks
            # are assigned", so an epoch with ready tasks and idle processors
            # must place at least one task.  A degenerate cost configuration
            # (e.g. a pure-communication cost, w_b = 0) can make the empty
            # mapping the cost optimum; fall back to the highest-level ready
            # task on the first idle processor in that case.
            top_task = max(ctx.ready_tasks, key=lambda t: ctx.levels[t])
            outcome.assignment = {top_task: ctx.idle_processors[0]}
        self._record_outcome(ctx.time, packet, outcome)
        return outcome.assignment

    # ------------------------------------------------------------------ #
    def fast_assign(self, packet) -> Optional[Dict[int, ProcId]]:
        """Index-space epoch assignment over the compiled scenario tables.

        Lowers the :class:`~repro.sim.compile.FastPacket` into an annealing
        packet + kernel (:func:`~repro.core.array_annealer.compile_fast_packet`
        gathers the equation-4 table from the scenario's per-edge tensor) and
        runs the same spawn / split / walk sequence as :meth:`assign`, so a
        fast-engine run commits bit-identical mappings and consumes the
        scheduler RNG identically.  Declines (before touching any stochastic
        state) for the reference path (``compiled=False``) and for
        trajectory-recording runs, which need the materialized context.
        """
        cfg = self.config
        if not cfg.compiled or cfg.record_trajectories:
            return None
        if packet.n_idle == 0 or packet.n_ready == 0:
            return {}
        apacket, kernel = compile_fast_packet(
            packet, cfg.weight_balance, cfg.weight_comm
        )
        packet_rng = spawn_rng(self._rng, 1)[0]
        outcome = self._annealer.anneal_compiled(apacket, kernel, packet_rng)
        if not outcome.assignment:
            # Progress guarantee, mirroring assign(): highest-level ready
            # task (first in ready order on ties) onto the first idle slot.
            levels = packet.scenario.levels_list
            top_task = max(packet.ready, key=lambda ti: levels[ti])
            outcome.assignment = {top_task: packet.idle[0]}
        self._record_outcome(packet.time, apacket, outcome)
        return outcome.assignment

    # ------------------------------------------------------------------ #
    # Aggregate statistics (paper §6a narrative)
    # ------------------------------------------------------------------ #
    @property
    def n_packets(self) -> int:
        """Number of annealing packets formed so far."""
        return len(self.packet_stats)

    def average_candidates_per_packet(self) -> float:
        """Average number of ready tasks per packet (≈15 for the paper's NE run)."""
        if not self.packet_stats:
            return 0.0
        return sum(s.n_ready for s in self.packet_stats) / len(self.packet_stats)

    def average_idle_processors_per_packet(self) -> float:
        """Average number of free processors per packet (≈1.46 for the paper's NE run)."""
        if not self.packet_stats:
            return 0.0
        return sum(s.n_idle for s in self.packet_stats) / len(self.packet_stats)

    def total_proposals(self) -> int:
        return sum(s.n_proposals for s in self.packet_stats)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SAScheduler(w_b={self.config.weight_balance}, w_c={self.config.weight_comm})"
