"""Simulated annealing of one packet's mapping.

This wires the packet state space (:class:`~repro.core.packet.PacketMapping`),
move generator (:func:`~repro.core.moves.propose_move`) and cost function
(:class:`~repro.core.cost.PacketCostFunction`) into the generic
:class:`~repro.annealing.annealer.Annealer`, and can record the per-proposal
balance / communication / total cost trajectory that Figure 1 of the paper
plots.

When the configuration's ``compiled`` flag is set (the default), the walk
runs in the *index space* of the packet's compiled
:class:`~repro.core.kernel.PacketKernel`: ready tasks and idle processors are
renumbered as dense integers, every move is scored by table lookup, and the
winning mapping is translated back to task/processor identifiers at the end.
The kernel reproduces the reference evaluation bit for bit, so compiled and
uncompiled runs accept exactly the same moves for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Hashable, List, Optional, Tuple

import math

import numpy as np

from repro.annealing.acceptance import BoltzmannSigmoidAcceptance
from repro.annealing.annealer import Annealer, AnnealingResult
from repro.annealing.portfolio import (
    LanePlan,
    PortfolioReport,
    SuccessiveHalvingController,
)
from repro.annealing.problem import AnnealingProblem
from repro.annealing.replicas import ReplicaStats, best_replica_index
from repro.annealing.stopping import CombinedStopping, MaxIterationsStopping, StallStopping
from repro.comm.model import CommunicationModel
from repro.core.array_annealer import anneal_array, anneal_replicas_batched
from repro.core.config import SAConfig
from repro.core.cost import CostBreakdown, PacketCostFunction
from repro.core.kernel import PacketKernel
from repro.core.moves import _DROP_PROBABILITY, propose_move
from repro.core.packet import AnnealingPacket, PacketMapping
from repro.utils.rng import StreamDraws, as_rng, split

__all__ = [
    "PacketMappingProblem",
    "PacketAnnealer",
    "PacketAnnealingOutcome",
    "SeededMappingProblem",
    "TrajectoryPoint",
]

TaskId = Hashable
ProcId = int


@dataclass(frozen=True)
class TrajectoryPoint:
    """One sample of the per-packet cost trajectory (the curves of Figure 1)."""

    iteration: int
    temperature: float
    balance_cost: float
    communication_cost: float
    total_cost: float
    accepted: bool


@dataclass
class PacketAnnealingOutcome:
    """Result of annealing one packet.

    ``assignment`` is the best mapping found (what the scheduler commits),
    ``initial_cost`` the cost of the seed mapping, ``breakdown`` the component
    costs of the best mapping, and ``trajectory`` the per-proposal component
    costs when trajectory recording was requested.

    For batched runs (``SAConfig.replicas > 1``), ``assignment``,
    ``best_cost``, ``initial_cost`` and ``n_temperature_steps`` describe the
    **winning replica**, ``n_proposals``/``n_accepted`` total the work across
    all replicas, ``best_replica`` names the winner and ``replica_stats``
    carries one :class:`~repro.annealing.replicas.ReplicaStats` per replica
    (the variance-study payload); both are ``None`` for single-chain runs.
    """

    assignment: Dict[TaskId, ProcId]
    best_cost: float
    initial_cost: float
    breakdown: CostBreakdown
    n_proposals: int
    n_accepted: int
    n_temperature_steps: int
    trajectory: List[TrajectoryPoint] = field(default_factory=list)
    best_replica: Optional[int] = None
    replica_stats: Optional[List[ReplicaStats]] = None
    #: portfolio runs only: the racing audit record (lane specs, rung
    #: decisions, champion, budget reallocation).
    portfolio: Optional[PortfolioReport] = None

    @property
    def improvement(self) -> float:
        """Cost decrease relative to the seed mapping (non-negative with elitism)."""
        return self.initial_cost - self.best_cost


def _anneal_indexed(
    kernel: PacketKernel,
    problem: "PacketMappingProblem",
    annealer: Annealer,
    rng,
) -> AnnealingResult:
    """Fused annealing loop over the kernel's index space.

    Replicates :meth:`~repro.annealing.annealer.Annealer.run` with the move
    generator, incremental cost and (sigmoid) acceptance rule inlined over the
    kernel's dense tables, drawing randomness through
    :class:`~repro.utils.rng.StreamDraws`.  Every stochastic decision consumes
    the generator's stream exactly as the generic loop does, so for a fixed
    seed this produces bit-identical results — only faster (no per-proposal
    mapping copies, no scalar numpy RNG calls, no method dispatch).
    """
    acceptance = annealer.acceptance
    cooling = annealer.cooling
    stopping = annealer.stopping
    moves_per_temperature = annealer.moves_per_temperature

    state0 = problem.initial_state(rng)
    t2p: Dict[int, int] = dict(state0.task_to_proc)
    p2t: Dict[int, int] = dict(state0.proc_to_task)

    brows = kernel.balance_rows
    rows = kernel.comm_rows
    wb, wc = kernel.weight_balance, kernel.weight_comm
    br, cr = kernel.balance_range, kernel.comm_range
    n_ready, n_idle = kernel.n_ready, kernel.n_idle
    comm_enabled = kernel.comm_enabled
    degenerate = n_ready == 0 or n_idle == 0

    def full_cost() -> float:
        # Mirrors PacketKernel.total_cost term for term.
        fb = -sum(brows[i][j] for i, j in t2p.items())
        fc = 0.0
        if comm_enabled:
            for i, j in t2p.items():
                fc += rows[i][j]
        return wc * fc / cr + wb * fb / br

    cost = full_cost()
    best_map = dict(t2p)
    best_cost = cost

    t0 = (
        annealer.initial_temperature
        if annealer.initial_temperature is not None
        else problem.initial_temperature(rng)
    )
    if t0 <= 0:
        raise ValueError(f"initial temperature must be > 0, got {t0}")

    stopping.reset()
    draws = StreamDraws(rng)
    sigmoid = type(acceptance) is BoltzmannSigmoidAcceptance
    exp = math.exp
    n_proposals = 0
    n_accepted = 0
    outer = 0
    while True:
        temperature = cooling.temperature(outer, t0)
        if sigmoid:
            if temperature < 0:
                raise ValueError(f"temperature must be >= 0, got {temperature}")
            zero_temp = temperature == 0.0
            infinite_temp = math.isinf(temperature)
        for _ in range(moves_per_temperature):
            # ---- propose: moves.propose_move inlined in index space ------- #
            # move kinds: 0 zero-delta, 1 drop, 2 (re)assign, 3 replace, 4 swap
            kind = 0
            delta = 0.0
            if not degenerate:
                if t2p and draws.random() < _DROP_PROBABILITY:
                    tasks = list(t2p)
                    task = tasks[draws.integers(0, len(tasks))]
                    old_j = t2p[task]
                    kind = 1
                    balance_delta = 0.0 + brows[task][old_j]
                    comm_delta = 0.0 - rows[task][old_j]
                    delta = wc * comm_delta / cr + wb * balance_delta / br
                else:
                    task = draws.integers(0, n_ready)
                    cur = t2p.get(task)
                    if cur is None:
                        new_j = draws.integers(0, n_idle)
                    elif n_idle == 1:
                        new_j = None  # nowhere else to go: zero-delta proposal
                    else:
                        idx = draws.integers(0, n_idle - 1)
                        if idx >= cur:
                            idx += 1
                        new_j = idx
                    if new_j is not None:
                        brow = brows[task]
                        row = rows[task]
                        occupant = p2t.get(new_j)
                        if occupant is None:
                            kind = 2
                            if cur is not None:
                                balance_delta = 0.0 + brow[cur]
                                comm_delta = 0.0 - row[cur]
                            else:
                                balance_delta = 0.0
                                comm_delta = 0.0
                            balance_delta -= brow[new_j]
                            comm_delta += row[new_j]
                        elif cur is None:
                            kind = 3
                            balance_delta = 0.0 + brows[occupant][new_j]
                            comm_delta = 0.0 - rows[occupant][new_j]
                            balance_delta -= brow[new_j]
                            comm_delta += row[new_j]
                        else:
                            kind = 4
                            balance_delta = 0.0 + brow[cur]
                            comm_delta = 0.0 - row[cur]
                            balance_delta -= brow[new_j]
                            comm_delta += row[new_j]
                            occ_brow = brows[occupant]
                            occ_row = rows[occupant]
                            balance_delta += occ_brow[new_j]
                            comm_delta -= occ_row[new_j]
                            balance_delta -= occ_brow[cur]
                            comm_delta += occ_row[cur]
                        delta = wc * comm_delta / cr + wb * balance_delta / br
            # ---- accept: BoltzmannSigmoidAcceptance inlined --------------- #
            n_proposals += 1
            if sigmoid:
                if zero_temp:
                    probability = 1.0 if delta < 0.0 else 0.0
                elif infinite_temp:
                    probability = 0.5
                else:
                    exponent = delta / temperature
                    if exponent > 500.0:
                        probability = 0.0
                    elif exponent < -500.0:
                        probability = 1.0
                    else:
                        probability = 1.0 / (1.0 + exp(exponent))
                if probability >= 1.0:
                    accepted = True
                elif probability <= 0.0:
                    accepted = False
                else:
                    accepted = draws.random() < probability
            else:
                accepted = acceptance.accept(delta, temperature, draws)
            if accepted:
                # Apply the move in place, reproducing the dict-insertion
                # order PacketMapping's assign/unassign/swap would leave.
                if kind == 1:
                    del t2p[task]
                    del p2t[old_j]
                elif kind == 2:
                    if cur is not None:
                        del t2p[task]
                        del p2t[cur]
                    t2p[task] = new_j
                    p2t[new_j] = task
                elif kind == 3:
                    del t2p[occupant]
                    t2p[task] = new_j
                    p2t[new_j] = task
                elif kind == 4:
                    t2p[task] = new_j
                    t2p[occupant] = cur
                    p2t[new_j] = task
                    p2t[cur] = occupant
                n_accepted += 1
                cost = cost + delta
                if cost < best_cost:
                    best_cost = cost
                    best_map = dict(t2p)
        # Per-temperature resynchronization against incremental-cost drift
        # (mirrors Annealer.run).
        resynced = full_cost()
        if abs(resynced - cost) > annealer.resync_tolerance:
            cost = resynced
        if stopping.should_stop(outer, cost):
            outer += 1
            break
        outer += 1

    return AnnealingResult(
        best_state=PacketMapping(best_map),
        best_cost=best_cost,
        final_state=PacketMapping(t2p),
        final_cost=cost,
        n_iterations=outer,
        n_proposals=n_proposals,
        n_accepted=n_accepted,
        trajectory=[],
    )


def _kernel_breakdown(kernel: PacketKernel, mapping: PacketMapping) -> CostBreakdown:
    """Component costs of an index-space mapping, scored through the kernel tables."""
    fb = kernel.balance_cost(mapping)
    fc = kernel.communication_cost(mapping)
    total = kernel.weight_comm * fc / kernel.comm_range + kernel.weight_balance * fb / kernel.balance_range
    return CostBreakdown(balance=fb, communication=fc, total=total)


class PacketMappingProblem(AnnealingProblem):
    """Adapter exposing the packet-mapping search to the generic annealer.

    *cost_function* may be a :class:`~repro.core.cost.PacketCostFunction`
    (id-space packets) or a :class:`~repro.core.kernel.PacketKernel` paired
    with its index-space packet — both expose ``total_cost`` and
    ``incremental_delta``.
    """

    def __init__(
        self,
        packet: AnnealingPacket,
        cost_function: PacketCostFunction,
        initial_mapping: str = "hlf",
    ) -> None:
        self.packet = packet
        self.cost_function = cost_function
        self.initial_mapping = initial_mapping

    # -- initial state ---------------------------------------------------- #
    def hlf_mapping(self) -> PacketMapping:
        """Greedy highest-level-first seed: top-level tasks on processors in index order.

        This is exactly the assignment the HLF baseline would commit for the
        same packet, so annealing can only improve (in packet-cost terms) on
        the baseline's choice.
        """
        order = sorted(self.packet.ready_tasks, key=lambda t: -self.packet.levels[t])
        k = self.packet.n_assignable
        mapping = PacketMapping()
        for task, proc in zip(order[:k], self.packet.idle_processors[:k]):
            mapping.assign(task, proc)
        return mapping

    def random_mapping(self, rng) -> PacketMapping:
        """A uniformly random maximal injective mapping."""
        k = self.packet.n_assignable
        tasks = list(self.packet.ready_tasks)
        procs = list(self.packet.idle_processors)
        chosen_tasks = [tasks[int(i)] for i in rng.permutation(len(tasks))[:k]]
        chosen_procs = [procs[int(i)] for i in rng.permutation(len(procs))[:k]]
        mapping = PacketMapping()
        for task, proc in zip(chosen_tasks, chosen_procs):
            mapping.assign(task, proc)
        return mapping

    def initial_state(self, rng) -> PacketMapping:
        if self.initial_mapping == "hlf":
            return self.hlf_mapping()
        if self.initial_mapping == "random":
            return self.random_mapping(rng)
        return PacketMapping()  # "empty"

    # -- neighbourhood and cost ------------------------------------------- #
    def propose(self, state: PacketMapping, rng) -> PacketMapping:
        return propose_move(self.packet, state, rng)

    def cost(self, state: PacketMapping) -> float:
        return self.cost_function.total_cost(state)

    def cost_delta(self, state: PacketMapping, new_state: PacketMapping, state_cost: float):
        """Incremental cost evaluation using the move's change record.

        Falls back to a full recomputation (``None``) when the proposal does
        not carry a change record (e.g. hand-built states in tests).
        """
        changes = new_state.last_change
        if changes is None:
            return None
        return self.cost_function.incremental_delta(changes)

    def initial_temperature(self, rng, n_samples: int = 32) -> float:
        # The packet cost is normalized to order one, so a unit starting
        # temperature is appropriate; SAConfig usually overrides this anyway.
        return 1.0


class SeededMappingProblem(PacketMappingProblem):
    """A portfolio lane's initial-state strategy, optionally externally seeded.

    ``"etf"`` lanes start from the ETF scheduler's solution for the same
    packet: *seed_mapping* is the index-space assignment as a tuple of
    ``(task_index, proc_index)`` pairs sorted by task index, so both the
    object and the fast engine build the identical
    :class:`~repro.core.packet.PacketMapping` (insertion order included).
    An ``"etf"`` lane without a seed degrades to the HLF start; every other
    strategy defers to :class:`PacketMappingProblem`.
    """

    def __init__(
        self,
        packet: AnnealingPacket,
        cost_function,
        initial_mapping: str = "hlf",
        seed_mapping: Optional[Tuple[Tuple[int, int], ...]] = None,
    ) -> None:
        known = initial_mapping if initial_mapping in ("hlf", "random", "empty") else "hlf"
        super().__init__(packet, cost_function, initial_mapping=known)
        self.strategy = initial_mapping
        self.seed_mapping = seed_mapping

    def initial_state(self, rng) -> PacketMapping:
        if self.strategy == "etf" and self.seed_mapping:
            mapping = PacketMapping()
            for i, j in self.seed_mapping:
                mapping.assign(i, j)
            return mapping
        return super().initial_state(rng)


class PacketAnnealer:
    """Anneal a single packet under an :class:`~repro.core.config.SAConfig`."""

    def __init__(self, config: Optional[SAConfig] = None) -> None:
        self.config = config or SAConfig()

    # ------------------------------------------------------------------ #
    def _build_annealer(self, packet: AnnealingPacket) -> Annealer:
        """The generic annealer configured for one packet (fresh stopping state)."""
        cfg = self.config
        return Annealer(
            acceptance=cfg.acceptance,
            cooling=cfg.cooling,
            stopping=CombinedStopping(
                [
                    StallStopping(patience=cfg.stall_patience),
                    MaxIterationsStopping(max_iterations=cfg.max_temperature_steps),
                ]
            ),
            moves_per_temperature=cfg.moves_for_packet(packet.n_ready, packet.n_idle),
            initial_temperature=cfg.initial_temperature,
            record_trajectory=False,
        )

    def _fused_walk(self, kernel: PacketKernel, problem, annealer: Annealer, rng) -> AnnealingResult:
        """The compiled inner walk: array tier by default, kernel tier as the
        configured alternative (and the automatic fallback for non-sigmoid
        acceptance rules, which the array walk does not inline)."""
        if (
            self.config.walk == "array"
            and type(annealer.acceptance) is BoltzmannSigmoidAcceptance
        ):
            return anneal_array(kernel, problem, annealer, rng)
        return _anneal_indexed(kernel, problem, annealer, rng)

    def anneal(
        self,
        packet: AnnealingPacket,
        machine,
        comm_model: Optional[CommunicationModel] = None,
        rng=None,
        record_trajectory: Optional[bool] = None,
        seed_assignments: Optional[Dict[str, Dict[TaskId, ProcId]]] = None,
    ) -> PacketAnnealingOutcome:
        """Run simulated annealing on *packet* and return the best mapping found.

        Parameters
        ----------
        packet:
            The annealing packet (ready tasks, idle processors, predecessor
            placements).
        machine:
            The target :class:`~repro.machine.machine.Machine`.
        comm_model:
            Communication model used to score placements (defaults to the full
            equation-4 model).
        rng:
            Seed or numpy Generator for this packet's stochastic decisions.
        record_trajectory:
            Override the config's ``record_trajectories`` flag for this call.
        seed_assignments:
            Portfolio mode only: id-space assignments (strategy name ->
            ``{task: proc}``) lanes may seed from, e.g. the ETF solution the
            scheduler computed for this packet.
        """
        cfg = self.config
        rng = as_rng(rng)
        record = cfg.record_trajectories if record_trajectory is None else record_trajectory
        if cfg.replicas > 1:
            return self._anneal_replicated(packet, machine, comm_model, rng, record)
        if cfg.portfolio is not None and packet.n_ready and packet.n_idle:
            cost_fn = PacketCostFunction(
                packet,
                machine,
                comm_model=comm_model,
                weight_balance=cfg.weight_balance,
                weight_comm=cfg.weight_comm,
                compiled=True,
            )
            return self._anneal_portfolio(packet, cost_fn.kernel, rng, seed_assignments)

        cost_fn = PacketCostFunction(
            packet,
            machine,
            comm_model=comm_model,
            weight_balance=cfg.weight_balance,
            weight_comm=cfg.weight_comm,
            compiled=cfg.compiled,
        )
        kernel = cost_fn.kernel
        if kernel is not None:
            # Fast path: anneal in index space over the compiled tables.
            problem = PacketMappingProblem(
                kernel.index_packet(), kernel, initial_mapping=cfg.initial_mapping
            )
        else:
            problem = PacketMappingProblem(packet, cost_fn, initial_mapping=cfg.initial_mapping)

        # Evaluate the seed mapping once so the outcome can report the
        # improvement achieved by annealing.  The seed is recomputed inside the
        # annealer with the same rng stream for the "random" strategy, so a
        # dedicated child generator keeps both draws identical.
        seed_rng, run_rng = _split_rng(rng)
        initial_mapping = problem.initial_state(seed_rng)
        initial_cost = problem.cost(initial_mapping)

        trajectory: List[TrajectoryPoint] = []
        callback = None
        if record:

            def callback(rec, state) -> None:
                if kernel is not None:
                    parts = _kernel_breakdown(kernel, state)
                else:
                    parts = cost_fn.breakdown(state)
                trajectory.append(
                    TrajectoryPoint(
                        iteration=rec.iteration,
                        temperature=rec.temperature,
                        balance_cost=parts.balance,
                        communication_cost=parts.communication,
                        total_cost=parts.total,
                        accepted=rec.accepted,
                    )
                )

        annealer = self._build_annealer(packet)
        if kernel is not None and callback is None:
            # Fused fast path: same walk, same RNG stream, no per-proposal
            # copies or scalar numpy draws.
            result = self._fused_walk(kernel, problem, annealer, as_rng(run_rng))
        else:
            result = annealer.run(problem, seed=run_rng, callback=callback)

        best_mapping: PacketMapping = result.best_state
        if kernel is not None:
            assignment = kernel.assignment_to_ids(best_mapping)
            breakdown = _kernel_breakdown(kernel, best_mapping)
        else:
            assignment = best_mapping.as_dict()
            breakdown = cost_fn.breakdown(best_mapping)
        return PacketAnnealingOutcome(
            assignment=assignment,
            best_cost=result.best_cost,
            initial_cost=initial_cost,
            breakdown=breakdown,
            n_proposals=result.n_proposals,
            n_accepted=result.n_accepted,
            n_temperature_steps=result.n_iterations,
            trajectory=trajectory,
        )

    # ------------------------------------------------------------------ #
    # Prebuilt-kernel entry (the fast-engine path)
    # ------------------------------------------------------------------ #
    def anneal_compiled(
        self,
        packet: AnnealingPacket,
        kernel: PacketKernel,
        rng=None,
        seed_assignments: Optional[Dict[TaskId, Dict[TaskId, ProcId]]] = None,
    ) -> PacketAnnealingOutcome:
        """Anneal over a prebuilt kernel (no trajectory recording).

        The entry point of :meth:`SAScheduler.fast_assign
        <repro.core.sa_scheduler.SAScheduler.fast_assign>`: the caller
        already lowered the epoch into *packet* + *kernel*
        (:func:`repro.core.array_annealer.compile_fast_packet`), so this
        skips the :class:`~repro.core.cost.PacketCostFunction` build and runs
        the same split-rng / seed-cost / fused-walk sequence as
        :meth:`anneal` — bit-identical outcomes when the tables are.
        """
        cfg = self.config
        rng = as_rng(rng)
        if cfg.replicas > 1:
            return self._anneal_compiled_replicas(packet, kernel, split(rng, cfg.replicas))
        if cfg.portfolio is not None and kernel.n_ready and kernel.n_idle:
            return self._anneal_portfolio(packet, kernel, rng, seed_assignments)
        problem = PacketMappingProblem(
            kernel.index_packet(), kernel, initial_mapping=cfg.initial_mapping
        )
        annealer = self._build_annealer(packet)
        seed_rng, run_rng = _split_rng(rng)
        initial_cost = problem.cost(problem.initial_state(seed_rng))
        result = self._fused_walk(kernel, problem, annealer, as_rng(run_rng))
        best_mapping = result.best_state
        return PacketAnnealingOutcome(
            assignment=kernel.assignment_to_ids(best_mapping),
            best_cost=result.best_cost,
            initial_cost=initial_cost,
            breakdown=_kernel_breakdown(kernel, best_mapping),
            n_proposals=result.n_proposals,
            n_accepted=result.n_accepted,
            n_temperature_steps=result.n_iterations,
            trajectory=[],
        )

    # ------------------------------------------------------------------ #
    # Batched multi-replica annealing
    # ------------------------------------------------------------------ #
    def _anneal_replicated(
        self,
        packet: AnnealingPacket,
        machine,
        comm_model,
        rng,
        record: bool,
    ) -> PacketAnnealingOutcome:
        """Anneal ``cfg.replicas`` multi-start chains and commit the best.

        Compiled, non-recording configurations run the vectorized lock-step
        engine over one shared kernel; the reference path and
        trajectory-recording runs fall back to one full scalar anneal per
        child stream (same children, same per-replica results, just slower).
        """
        cfg = self.config
        children = split(rng, cfg.replicas)
        if cfg.compiled and not record:
            cost_fn = PacketCostFunction(
                packet,
                machine,
                comm_model=comm_model,
                weight_balance=cfg.weight_balance,
                weight_comm=cfg.weight_comm,
                compiled=True,
            )
            return self._anneal_compiled_replicas(packet, cost_fn.kernel, children)
        single = PacketAnnealer(replace(cfg, replicas=1))
        outcomes = [
            single.anneal(
                packet, machine, comm_model=comm_model, rng=child, record_trajectory=record
            )
            for child in children
        ]
        stats = [
            ReplicaStats(
                replica=b,
                best_cost=o.best_cost,
                initial_cost=o.initial_cost,
                final_cost=None,
                n_proposals=o.n_proposals,
                n_accepted=o.n_accepted,
                n_temperature_steps=o.n_temperature_steps,
            )
            for b, o in enumerate(outcomes)
        ]
        best = best_replica_index([o.best_cost for o in outcomes])
        winner = outcomes[best]
        return PacketAnnealingOutcome(
            assignment=winner.assignment,
            best_cost=winner.best_cost,
            initial_cost=winner.initial_cost,
            breakdown=winner.breakdown,
            n_proposals=sum(o.n_proposals for o in outcomes),
            n_accepted=sum(o.n_accepted for o in outcomes),
            n_temperature_steps=winner.n_temperature_steps,
            trajectory=winner.trajectory,
            best_replica=best,
            replica_stats=stats,
        )

    def _anneal_compiled_replicas(
        self,
        packet: AnnealingPacket,
        kernel: PacketKernel,
        children,
    ) -> PacketAnnealingOutcome:
        """Lock-step replicas over one shared kernel (the batched hot path)."""
        cfg = self.config
        problem = PacketMappingProblem(
            kernel.index_packet(), kernel, initial_mapping=cfg.initial_mapping
        )
        annealer = self._build_annealer(packet)
        run_rngs = []
        initial_costs = []
        for child in children:
            seed_rng, run_rng = _split_rng(child)
            initial_costs.append(problem.cost(problem.initial_state(seed_rng)))
            run_rngs.append(as_rng(run_rng))
        if cfg.walk == "array":
            results, trajs = anneal_replicas_batched(kernel, problem, annealer, run_rngs)
        else:
            # Kernel-walk oracle: one scalar fused walk per replica.
            results = [_anneal_indexed(kernel, problem, annealer, r) for r in run_rngs]
            trajs = [[] for _ in results]
        stats = [
            ReplicaStats(
                replica=b,
                best_cost=results[b].best_cost,
                initial_cost=initial_costs[b],
                final_cost=results[b].final_cost,
                n_proposals=results[b].n_proposals,
                n_accepted=results[b].n_accepted,
                n_temperature_steps=results[b].n_iterations,
                temperature_trajectory=tuple(trajs[b]),
            )
            for b in range(len(results))
        ]
        best = best_replica_index([r.best_cost for r in results])
        winner = results[best]
        return PacketAnnealingOutcome(
            assignment=kernel.assignment_to_ids(winner.best_state),
            best_cost=winner.best_cost,
            initial_cost=initial_costs[best],
            breakdown=_kernel_breakdown(kernel, winner.best_state),
            n_proposals=sum(r.n_proposals for r in results),
            n_accepted=sum(r.n_accepted for r in results),
            n_temperature_steps=winner.n_iterations,
            best_replica=best,
            replica_stats=stats,
        )

    # ------------------------------------------------------------------ #
    # Anytime lane portfolio with successive-halving racing
    # ------------------------------------------------------------------ #
    def build_lane_plan(
        self,
        kernel: PacketKernel,
        seed_assignments: Optional[Dict[str, Dict[TaskId, ProcId]]] = None,
    ) -> LanePlan:
        """The heterogeneous per-lane walk parameters for one packet.

        Public so the differential tests can rebuild the exact plan a
        portfolio run used and replay each lane as a scalar
        :func:`~repro.core.array_annealer.anneal_array` walk.  Id-space seed
        assignments are translated through the kernel's index maps and
        canonicalized (sorted by task index) so both engines build identical
        seeds.
        """
        cfg = self.config
        pf = cfg.portfolio
        specs = pf.lane_specs()
        index_packet = kernel.index_packet()
        seeds_ix: Dict[str, Tuple[Tuple[int, int], ...]] = {}
        for name, mapping in (seed_assignments or {}).items():
            seeds_ix[name] = tuple(
                sorted(
                    (kernel.task_index[t], kernel.proc_index[p])
                    for t, p in mapping.items()
                )
            )
        problems = [
            SeededMappingProblem(
                index_packet, kernel, spec.initial, seeds_ix.get(spec.initial)
            )
            for spec in specs
        ]
        base = pf.base_budget if pf.base_budget is not None else cfg.max_temperature_steps
        return LanePlan(
            problems=problems,
            coolings=[spec.cooling for spec in specs],
            t0s=[cfg.initial_temperature * spec.temperature_scale for spec in specs],
            budgets=np.full(pf.lanes, base, dtype=np.int64),
            controller=SuccessiveHalvingController(pf.rung, pf.lanes),
            specs=specs,
        )

    def _anneal_portfolio(
        self,
        packet: AnnealingPacket,
        kernel: PacketKernel,
        rng,
        seed_assignments: Optional[Dict[str, Dict[TaskId, ProcId]]] = None,
    ) -> PacketAnnealingOutcome:
        """Race ``cfg.portfolio.lanes`` heterogeneous chains, commit the champion.

        Same split-rng discipline as :meth:`_anneal_compiled_replicas` — one
        child stream per lane, a twin seed generator for the initial cost —
        so lane *b* is bit-identical to a scalar run of its own
        configuration on child *b*, culled or not.
        """
        cfg = self.config
        plan = self.build_lane_plan(kernel, seed_assignments)
        annealer = self._build_annealer(packet)
        children = split(rng, cfg.portfolio.lanes)
        run_rngs = []
        initial_costs = []
        for b, child in enumerate(children):
            seed_rng, run_rng = _split_rng(child)
            initial_costs.append(
                plan.problems[b].cost(plan.problems[b].initial_state(seed_rng))
            )
            run_rngs.append(as_rng(run_rng))
        results, trajs = anneal_replicas_batched(
            kernel, plan.problems[0], annealer, run_rngs, plan=plan
        )
        controller = plan.controller
        culled = set()
        for rung in controller.rungs:
            culled.update(rung.culled)
        stats = [
            ReplicaStats(
                replica=b,
                best_cost=results[b].best_cost,
                initial_cost=initial_costs[b],
                final_cost=results[b].final_cost,
                n_proposals=results[b].n_proposals,
                n_accepted=results[b].n_accepted,
                n_temperature_steps=results[b].n_iterations,
                temperature_trajectory=tuple(trajs[b]),
                culled=b in culled,
                budget=int(plan.budgets[b]),
            )
            for b in range(len(results))
        ]
        best = best_replica_index([r.best_cost for r in results])
        winner = results[best]
        report = PortfolioReport(
            specs=plan.specs,
            rungs=tuple(controller.rungs),
            champion=best,
            champion_cost=winner.best_cost,
            n_culled=controller.n_culled,
            budget_reallocated=controller.budget_reallocated,
            final_budgets=tuple(int(x) for x in plan.budgets),
            n_steps=tuple(r.n_iterations for r in results),
        )
        return PacketAnnealingOutcome(
            assignment=kernel.assignment_to_ids(winner.best_state),
            best_cost=winner.best_cost,
            initial_cost=initial_costs[best],
            breakdown=_kernel_breakdown(kernel, winner.best_state),
            n_proposals=sum(r.n_proposals for r in results),
            n_accepted=sum(r.n_accepted for r in results),
            n_temperature_steps=winner.n_iterations,
            best_replica=best,
            replica_stats=stats,
            portfolio=report,
        )


def _split_rng(rng):
    """Return two generators that produce identical streams.

    Both children are seeded with the same value drawn from the parent, so the
    seed mapping computed outside the annealer matches the one the annealer
    rebuilds internally for the "random" initial-mapping strategy.
    """
    import numpy as np

    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed), np.random.default_rng(seed)
