"""Simulated annealing of one packet's mapping.

This wires the packet state space (:class:`~repro.core.packet.PacketMapping`),
move generator (:func:`~repro.core.moves.propose_move`) and cost function
(:class:`~repro.core.cost.PacketCostFunction`) into the generic
:class:`~repro.annealing.annealer.Annealer`, and can record the per-proposal
balance / communication / total cost trajectory that Figure 1 of the paper
plots.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.annealing.annealer import Annealer
from repro.annealing.problem import AnnealingProblem
from repro.annealing.stopping import CombinedStopping, MaxIterationsStopping, StallStopping
from repro.comm.model import CommunicationModel
from repro.core.config import SAConfig
from repro.core.cost import CostBreakdown, PacketCostFunction
from repro.core.moves import propose_move
from repro.core.packet import AnnealingPacket, PacketMapping
from repro.utils.rng import as_rng

__all__ = [
    "PacketMappingProblem",
    "PacketAnnealer",
    "PacketAnnealingOutcome",
    "TrajectoryPoint",
]

TaskId = Hashable
ProcId = int


@dataclass(frozen=True)
class TrajectoryPoint:
    """One sample of the per-packet cost trajectory (the curves of Figure 1)."""

    iteration: int
    temperature: float
    balance_cost: float
    communication_cost: float
    total_cost: float
    accepted: bool


@dataclass
class PacketAnnealingOutcome:
    """Result of annealing one packet.

    ``assignment`` is the best mapping found (what the scheduler commits),
    ``initial_cost`` the cost of the seed mapping, ``breakdown`` the component
    costs of the best mapping, and ``trajectory`` the per-proposal component
    costs when trajectory recording was requested.
    """

    assignment: Dict[TaskId, ProcId]
    best_cost: float
    initial_cost: float
    breakdown: CostBreakdown
    n_proposals: int
    n_accepted: int
    n_temperature_steps: int
    trajectory: List[TrajectoryPoint] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Cost decrease relative to the seed mapping (non-negative with elitism)."""
        return self.initial_cost - self.best_cost


class PacketMappingProblem(AnnealingProblem):
    """Adapter exposing the packet-mapping search to the generic annealer."""

    def __init__(
        self,
        packet: AnnealingPacket,
        cost_function: PacketCostFunction,
        initial_mapping: str = "hlf",
    ) -> None:
        self.packet = packet
        self.cost_function = cost_function
        self.initial_mapping = initial_mapping

    # -- initial state ---------------------------------------------------- #
    def hlf_mapping(self) -> PacketMapping:
        """Greedy highest-level-first seed: top-level tasks on processors in index order.

        This is exactly the assignment the HLF baseline would commit for the
        same packet, so annealing can only improve (in packet-cost terms) on
        the baseline's choice.
        """
        order = sorted(self.packet.ready_tasks, key=lambda t: -self.packet.levels[t])
        k = self.packet.n_assignable
        mapping = PacketMapping()
        for task, proc in zip(order[:k], self.packet.idle_processors[:k]):
            mapping.assign(task, proc)
        return mapping

    def random_mapping(self, rng) -> PacketMapping:
        """A uniformly random maximal injective mapping."""
        k = self.packet.n_assignable
        tasks = list(self.packet.ready_tasks)
        procs = list(self.packet.idle_processors)
        chosen_tasks = [tasks[int(i)] for i in rng.permutation(len(tasks))[:k]]
        chosen_procs = [procs[int(i)] for i in rng.permutation(len(procs))[:k]]
        mapping = PacketMapping()
        for task, proc in zip(chosen_tasks, chosen_procs):
            mapping.assign(task, proc)
        return mapping

    def initial_state(self, rng) -> PacketMapping:
        if self.initial_mapping == "hlf":
            return self.hlf_mapping()
        if self.initial_mapping == "random":
            return self.random_mapping(rng)
        return PacketMapping()  # "empty"

    # -- neighbourhood and cost ------------------------------------------- #
    def propose(self, state: PacketMapping, rng) -> PacketMapping:
        return propose_move(self.packet, state, rng)

    def cost(self, state: PacketMapping) -> float:
        return self.cost_function.total_cost(state)

    def cost_delta(self, state: PacketMapping, new_state: PacketMapping, state_cost: float):
        """Incremental cost evaluation using the move's change record.

        Falls back to a full recomputation (``None``) when the proposal does
        not carry a change record (e.g. hand-built states in tests).
        """
        changes = new_state.last_change
        if changes is None:
            return None
        return self.cost_function.incremental_delta(changes)

    def initial_temperature(self, rng, n_samples: int = 32) -> float:
        # The packet cost is normalized to order one, so a unit starting
        # temperature is appropriate; SAConfig usually overrides this anyway.
        return 1.0


class PacketAnnealer:
    """Anneal a single packet under an :class:`~repro.core.config.SAConfig`."""

    def __init__(self, config: Optional[SAConfig] = None) -> None:
        self.config = config or SAConfig()

    def anneal(
        self,
        packet: AnnealingPacket,
        machine,
        comm_model: Optional[CommunicationModel] = None,
        rng=None,
        record_trajectory: Optional[bool] = None,
    ) -> PacketAnnealingOutcome:
        """Run simulated annealing on *packet* and return the best mapping found.

        Parameters
        ----------
        packet:
            The annealing packet (ready tasks, idle processors, predecessor
            placements).
        machine:
            The target :class:`~repro.machine.machine.Machine`.
        comm_model:
            Communication model used to score placements (defaults to the full
            equation-4 model).
        rng:
            Seed or numpy Generator for this packet's stochastic decisions.
        record_trajectory:
            Override the config's ``record_trajectories`` flag for this call.
        """
        cfg = self.config
        rng = as_rng(rng)
        record = cfg.record_trajectories if record_trajectory is None else record_trajectory

        cost_fn = PacketCostFunction(
            packet,
            machine,
            comm_model=comm_model,
            weight_balance=cfg.weight_balance,
            weight_comm=cfg.weight_comm,
        )
        problem = PacketMappingProblem(packet, cost_fn, initial_mapping=cfg.initial_mapping)

        # Evaluate the seed mapping once so the outcome can report the
        # improvement achieved by annealing.  The seed is recomputed inside the
        # annealer with the same rng stream for the "random" strategy, so a
        # dedicated child generator keeps both draws identical.
        seed_rng, run_rng = _split_rng(rng)
        initial_mapping = problem.initial_state(seed_rng)
        initial_cost = cost_fn.total_cost(initial_mapping)

        trajectory: List[TrajectoryPoint] = []
        callback = None
        if record:

            def callback(rec, state) -> None:
                parts = cost_fn.breakdown(state)
                trajectory.append(
                    TrajectoryPoint(
                        iteration=rec.iteration,
                        temperature=rec.temperature,
                        balance_cost=parts.balance,
                        communication_cost=parts.communication,
                        total_cost=parts.total,
                        accepted=rec.accepted,
                    )
                )

        annealer = Annealer(
            acceptance=cfg.acceptance,
            cooling=cfg.cooling,
            stopping=CombinedStopping(
                [
                    StallStopping(patience=cfg.stall_patience),
                    MaxIterationsStopping(max_iterations=cfg.max_temperature_steps),
                ]
            ),
            moves_per_temperature=cfg.moves_for_packet(packet.n_ready, packet.n_idle),
            initial_temperature=cfg.initial_temperature,
            record_trajectory=False,
        )
        result = annealer.run(problem, seed=run_rng, callback=callback)

        best_mapping: PacketMapping = result.best_state
        return PacketAnnealingOutcome(
            assignment=best_mapping.as_dict(),
            best_cost=result.best_cost,
            initial_cost=initial_cost,
            breakdown=cost_fn.breakdown(best_mapping),
            n_proposals=result.n_proposals,
            n_accepted=result.n_accepted,
            n_temperature_steps=result.n_iterations,
            trajectory=trajectory,
        )


def _split_rng(rng):
    """Return two generators that produce identical streams.

    Both children are seeded with the same value drawn from the parent, so the
    seed mapping computed outside the annealer matches the one the annealer
    rebuilds internally for the "random" initial-mapping strategy.
    """
    import numpy as np

    seed = int(rng.integers(0, 2**63 - 1))
    return np.random.default_rng(seed), np.random.default_rng(seed)
