"""Annealing packets and packet mappings.

An *annealing packet* (paper §4.1) is the pair (ready tasks, idle processors)
formed at an assignment epoch.  A *packet mapping* is a partial, injective
assignment of ready tasks to idle processors — the state space the per-packet
annealer explores.  Since a processor can start at most one task at the
epoch, at most ``min(n_ready, n_idle)`` tasks can be selected; unselected
tasks roll over to the next packet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.exceptions import SchedulingError

__all__ = ["AnnealingPacket", "PacketMapping"]

TaskId = Hashable
ProcId = int


@dataclass(frozen=True)
class AnnealingPacket:
    """The raw material of one assignment epoch.

    Attributes
    ----------
    time:
        The epoch time.
    ready_tasks:
        Ready (unassigned, all-predecessors-finished) tasks, in deterministic
        order.
    idle_processors:
        Idle processors, in increasing index order.
    levels:
        Task level ``n_i`` for each ready task.
    predecessor_placement:
        For each ready task, the list of ``(pred_task, pred_processor,
        comm_weight)`` triples over its already-placed predecessors.  This is
        all the communication information the packet cost needs, so the cost
        function never has to touch the full graph during annealing.
    """

    time: float
    ready_tasks: Tuple[TaskId, ...]
    idle_processors: Tuple[ProcId, ...]
    levels: Mapping[TaskId, float]
    predecessor_placement: Mapping[TaskId, Tuple[Tuple[TaskId, ProcId, float], ...]]

    @property
    def n_ready(self) -> int:
        return len(self.ready_tasks)

    @property
    def n_idle(self) -> int:
        return len(self.idle_processors)

    @property
    def n_assignable(self) -> int:
        """At most one task can start per idle processor."""
        return min(self.n_ready, self.n_idle)

    @cached_property
    def proc_position(self) -> Dict[ProcId, int]:
        """Position of each idle processor in ``idle_processors``.

        Cached on first use; lets the move generator pick a "different
        processor" with a single bounded draw instead of materializing a
        candidate list on every proposal.
        """
        return {p: k for k, p in enumerate(self.idle_processors)}

    @classmethod
    def from_context(cls, ctx) -> "AnnealingPacket":
        """Build a packet from a :class:`~repro.schedulers.base.PacketContext`."""
        placement: Dict[TaskId, Tuple[Tuple[TaskId, ProcId, float], ...]] = {}
        for task in ctx.ready_tasks:
            entries = []
            for pred in ctx.graph.predecessors(task):
                proc = ctx.task_processor.get(pred)
                if proc is None:
                    # Predecessor not placed (should not happen for a ready task,
                    # but stay defensive for synthetic contexts in tests).
                    continue
                entries.append((pred, proc, ctx.graph.comm(pred, task)))
            placement[task] = tuple(entries)
        return cls(
            time=ctx.time,
            ready_tasks=tuple(ctx.ready_tasks),
            idle_processors=tuple(ctx.idle_processors),
            levels={t: ctx.levels[t] for t in ctx.ready_tasks},
            predecessor_placement=placement,
        )


class PacketMapping:
    """A partial injective mapping of a packet's ready tasks onto its idle processors.

    The mapping is stored in both directions (task → processor and processor
    → task) so that moves and cost evaluations are O(1).  Instances are
    treated as immutable by the annealer: every move produces a copy.

    ``last_change`` records the per-task placement changes of the most recent
    move applied to this copy (``(task, old_proc, new_proc)`` triples, where
    ``None`` stands for "not selected").  The packet cost function uses it to
    evaluate cost changes incrementally instead of rescoring the whole
    mapping on every proposal.
    """

    __slots__ = ("task_to_proc", "proc_to_task", "last_change")

    def __init__(
        self,
        task_to_proc: Optional[Dict[TaskId, ProcId]] = None,
    ) -> None:
        self.task_to_proc: Dict[TaskId, ProcId] = dict(task_to_proc or {})
        self.proc_to_task: Dict[ProcId, TaskId] = {}
        self.last_change: Optional[List[tuple]] = None
        for task, proc in self.task_to_proc.items():
            if proc in self.proc_to_task:
                raise SchedulingError(
                    f"processor {proc!r} assigned to both {self.proc_to_task[proc]!r} and {task!r}"
                )
            self.proc_to_task[proc] = task

    # ------------------------------------------------------------------ #
    def copy(self) -> "PacketMapping":
        new = PacketMapping.__new__(PacketMapping)
        new.task_to_proc = dict(self.task_to_proc)
        new.proc_to_task = dict(self.proc_to_task)
        new.last_change = None
        return new

    @property
    def n_assigned(self) -> int:
        return len(self.task_to_proc)

    def processor_of(self, task: TaskId) -> Optional[ProcId]:
        return self.task_to_proc.get(task)

    def task_on(self, proc: ProcId) -> Optional[TaskId]:
        return self.proc_to_task.get(proc)

    def is_selected(self, task: TaskId) -> bool:
        """The paper's selection indicator ``s(i)``."""
        return task in self.task_to_proc

    def selected_tasks(self) -> List[TaskId]:
        return list(self.task_to_proc.keys())

    # ------------------------------------------------------------------ #
    # In-place mutations used by the move generator (on copies only)
    # ------------------------------------------------------------------ #
    def unassign(self, task: TaskId) -> None:
        proc = self.task_to_proc.pop(task, None)
        if proc is not None:
            del self.proc_to_task[proc]

    def assign(self, task: TaskId, proc: ProcId) -> None:
        """Place *task* on *proc*; both must currently be free of each other."""
        if proc in self.proc_to_task:
            raise SchedulingError(f"processor {proc!r} already holds a task")
        self.unassign(task)
        self.task_to_proc[task] = proc
        self.proc_to_task[proc] = task

    def swap(self, task_a: TaskId, task_b: TaskId) -> None:
        """Exchange the processors of two currently-assigned tasks."""
        proc_a = self.task_to_proc.get(task_a)
        proc_b = self.task_to_proc.get(task_b)
        if proc_a is None or proc_b is None:
            raise SchedulingError("swap requires both tasks to be assigned")
        self.task_to_proc[task_a], self.task_to_proc[task_b] = proc_b, proc_a
        self.proc_to_task[proc_a], self.proc_to_task[proc_b] = task_b, task_a

    # ------------------------------------------------------------------ #
    def as_dict(self) -> Dict[TaskId, ProcId]:
        """Plain ``{task: processor}`` dictionary (what the simulator consumes)."""
        return dict(self.task_to_proc)

    def __eq__(self, other) -> bool:
        if not isinstance(other, PacketMapping):
            return NotImplemented
        return self.task_to_proc == other.task_to_proc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PacketMapping({self.task_to_proc!r})"
