"""The compiled packet kernel: dense-index cost tables for one annealing packet.

Everything the packet cost function (paper equations 3 – 6) needs is fixed the
moment a packet is formed: the ready tasks' levels, and — because every
predecessor of a ready task is already placed — the full communication cost of
putting ready task ``t_i`` on idle processor ``P_j``.  The kernel exploits
this: it indexes the packet's ready tasks and idle processors as dense
integers ``0..n-1`` and precomputes

* ``levels[i]`` — the level ``n_i`` of ready task *i* (eq. 3),
* ``balance_rows[i][j]`` — the balance reward ``n_i * speed_j`` of placing
  ready task *i* on idle processor *j* (on homogeneous machines every entry
  of row *i* is the level itself, bit for bit), and
* ``comm_rows[i][j]`` — the total equation-4 cost of placing ready task *i*
  on idle processor *j*, built vectorized from the machine's (weighted)
  distance matrix (:func:`repro.comm.model.comm_cost_table`),

so that ``balance_cost``, ``communication_cost`` and the per-move
``incremental_delta`` reduce to O(1) table lookups with zero
``comm_model.cost()`` calls inside the annealing loop.  The accumulation
order of the tables matches the scalar implementation term for term, so a
fixed-seed annealing run over the kernel accepts exactly the same moves (and
commits exactly the same assignments) as the original per-call evaluation.

The kernel also exposes the packet in *index space* (ready task *i* stands
for ``tasks[i]``, idle processor *j* for ``procs[j]``): the annealer runs its
whole walk on small-integer mappings — cheaper to hash, copy and look up than
arbitrary task identifiers — and :meth:`assignment_to_ids` translates the
winning mapping back at the end.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.comm.model import (
    CommunicationModel,
    LinearCommModel,
    comm_cost_table,
    effective_comm_cost,
)
from repro.core.packet import AnnealingPacket, PacketMapping

__all__ = [
    "PacketKernel",
    "idle_processor_speeds",
    "compute_balance_range",
    "compute_comm_range",
]

TaskId = Hashable
ProcId = int


def idle_processor_speeds(packet: AnnealingPacket, machine) -> Optional[List[float]]:
    """Speed factors of the packet's idle processors, or ``None`` when uniform.

    ``None`` (every speed exactly 1.0, or a machine without a speed model)
    selects the original homogeneous code paths, which keeps default machines
    bit-for-bit unchanged.
    """
    speed_of = getattr(machine, "speed_of", None)
    if speed_of is None or getattr(machine, "has_unit_speeds", True):
        return None
    speeds = [speed_of(p) for p in packet.idle_processors]
    if all(s == 1.0 for s in speeds):
        return None
    return speeds


def compute_balance_range(packet: AnnealingPacket, speeds: Optional[List[float]] = None) -> float:
    """``dF_b = (Max - Min) / N_idle`` (paper §4.2c) with a positive-floor guard.

    *speeds* (aligned with ``packet.idle_processors``) generalizes the range
    to heterogeneous machines, where the balance reward of selecting task *i*
    on processor *j* is ``n_i * speed_j``: the ``Max`` estimate pairs the
    highest levels with the fastest processors and the ``Min`` estimate the
    lowest levels with the slowest (reverse-sorted, by the rearrangement
    inequality).  ``None`` — the homogeneous default — reproduces the paper's
    original unit-speed formula exactly.
    """
    n_idle = packet.n_idle
    if n_idle == 0:
        return 1.0
    levels = sorted((packet.levels[t] for t in packet.ready_tasks), reverse=True)
    k = min(n_idle, len(levels))
    if k == 0:
        return 1.0
    if speeds is None:
        max_sum = sum(levels[:k])
        min_sum = sum(levels[-k:])
    else:
        speeds_desc = sorted(speeds, reverse=True)
        speeds_asc = speeds_desc[::-1]
        max_sum = sum(l * s for l, s in zip(levels[:k], speeds_desc[:k]))
        min_sum = sum(l * s for l, s in zip(levels[-k:], speeds_asc[:k]))
    rng = (max_sum - min_sum) / n_idle
    # When every candidate has the same level the balancing term cannot
    # discriminate; normalize by the common level magnitude instead so the
    # term still rewards selecting *more* tasks.
    if rng <= 0.0:
        rng = max(abs(max_sum) / max(n_idle, 1), 1.0)
    return rng


def compute_comm_range(packet: AnnealingPacket, machine, comm_model: CommunicationModel) -> float:
    """``dF_c``: highest-communication candidates paired with the network diameter.

    At most ``min(n_idle, candidates)`` tasks can be selected, so the estimate
    sums that many of the worst per-task costs — explicitly clamped, so a
    degenerate packet with no idle processor keeps the neutral range of 1.0
    instead of silently summing every candidate.  On weighted machines the
    worst case pairs the hop diameter (routing overhead) with the weighted
    diameter (volume); on unit-weight machines both are the same integer and
    the estimate is unchanged.
    """
    if not comm_model.enabled:
        return 1.0
    diameter = max(machine.diameter, 1)
    weighted_diameter = max(getattr(machine, "weighted_diameter", diameter), 1)
    totals = []
    for task in packet.ready_tasks:
        preds = packet.predecessor_placement.get(task, ())
        if not preds:
            continue
        worst = sum(
            effective_comm_cost(w, diameter, False, machine.params, weighted_diameter)
            for _, _, w in preds
        )
        totals.append(worst)
    if not totals:
        return 1.0
    totals.sort(reverse=True)
    k = min(packet.n_idle, len(totals))
    if k == 0:
        return 1.0
    estimate = sum(totals[:k])
    return estimate if estimate > 0 else 1.0


class PacketKernel:
    """Precompiled cost tables and index-space view of one annealing packet.

    Parameters
    ----------
    packet:
        The annealing packet to compile.
    machine:
        The target :class:`~repro.machine.machine.Machine`.
    comm_model:
        Communication model used to fill the cost table (defaults to the full
        equation-4 model).
    weight_balance, weight_comm:
        The mixing weights ``w_b`` and ``w_c`` of equation 6 (validated by the
        caller, typically :class:`~repro.core.cost.PacketCostFunction`).
    comm_table:
        Optional prebuilt ``(n_ready, n_idle)`` equation-4 table.  ``None``
        (the default) builds it with :func:`~repro.comm.model.comm_cost_table`;
        a caller passing one (see :meth:`from_tables`) guarantees its entries
        are bit-identical to that construction.
    """

    __slots__ = (
        "packet",
        "tasks",
        "procs",
        "n_ready",
        "n_idle",
        "task_index",
        "proc_index",
        "levels",
        "speeds",
        "balance_rows",
        "comm_table",
        "comm_rows",
        "comm_enabled",
        "weight_balance",
        "weight_comm",
        "balance_range",
        "comm_range",
    )

    def __init__(
        self,
        packet: AnnealingPacket,
        machine,
        comm_model: Optional[CommunicationModel] = None,
        weight_balance: float = 0.5,
        weight_comm: float = 0.5,
        comm_table=None,
    ) -> None:
        comm_model = comm_model if comm_model is not None else LinearCommModel()
        self.packet = packet
        self.tasks: Tuple[TaskId, ...] = packet.ready_tasks
        self.procs: Tuple[ProcId, ...] = packet.idle_processors
        self.n_ready = len(self.tasks)
        self.n_idle = len(self.procs)
        self.task_index: Dict[TaskId, int] = {t: i for i, t in enumerate(self.tasks)}
        self.proc_index: Dict[ProcId, int] = {p: j for j, p in enumerate(self.procs)}
        self.levels: List[float] = [packet.levels[t] for t in self.tasks]
        self.speeds: Optional[List[float]] = idle_processor_speeds(packet, machine)
        # The balance reward of placing ready task i on idle processor j is
        # level_i * speed_j (eq. 3 generalized to heterogeneous machines);
        # with unit speeds the product is the level itself, bit for bit.
        if self.speeds is None:
            self.balance_rows: List[List[float]] = [
                [lvl] * self.n_idle for lvl in self.levels
            ]
        else:
            self.balance_rows = [
                [lvl * s for s in self.speeds] for lvl in self.levels
            ]
        if comm_table is None:
            placements = [
                tuple((pred_proc, w) for _, pred_proc, w in packet.predecessor_placement.get(t, ()))
                for t in self.tasks
            ]
            comm_table = comm_cost_table(comm_model, machine, self.procs, placements)
        self.comm_table = comm_table
        # Nested plain-float lists: scalar indexing is faster than ndarray
        # item access in the per-proposal hot loop, and ``tolist`` preserves
        # the float64 values exactly.
        self.comm_rows: List[List[float]] = self.comm_table.tolist()
        self.comm_enabled = comm_model.enabled
        self.weight_balance = float(weight_balance)
        self.weight_comm = float(weight_comm)
        self.balance_range = compute_balance_range(packet, self.speeds)
        self.comm_range = compute_comm_range(packet, machine, comm_model)

    @classmethod
    def from_tables(
        cls,
        packet: AnnealingPacket,
        machine,
        comm_model: CommunicationModel,
        comm_table,
        weight_balance: float = 0.5,
        weight_comm: float = 0.5,
    ) -> "PacketKernel":
        """Build a kernel around an externally-built communication table.

        *comm_table* is the ``(n_ready, n_idle)`` equation-4 cost table,
        typically gathered from a compiled scenario's per-edge tensor
        (:func:`repro.core.array_annealer.compile_fast_packet`).  The caller
        guarantees its entries are bit-identical to what
        :func:`~repro.comm.model.comm_cost_table` would produce; everything
        else (levels, speeds, balance rows, normalization ranges) is derived
        by the regular constructor.
        """
        return cls(
            packet,
            machine,
            comm_model=comm_model,
            weight_balance=weight_balance,
            weight_comm=weight_comm,
            comm_table=comm_table,
        )

    # ------------------------------------------------------------------ #
    # Index-space view (what the annealer runs on)
    # ------------------------------------------------------------------ #
    def index_packet(self) -> AnnealingPacket:
        """The packet with ready tasks and idle processors renumbered ``0..n-1``.

        ``levels`` is the dense levels list (integer task *i* indexes it
        directly); the predecessor placement is dropped because the kernel's
        tables already encode all communication information.
        """
        return AnnealingPacket(
            time=self.packet.time,
            ready_tasks=tuple(range(self.n_ready)),
            idle_processors=tuple(range(self.n_idle)),
            levels=self.levels,
            predecessor_placement={},
        )

    def assignment_to_ids(self, mapping: PacketMapping) -> Dict[TaskId, ProcId]:
        """Translate an index-space mapping back to task/processor identifiers."""
        tasks, procs = self.tasks, self.procs
        return {tasks[i]: procs[j] for i, j in mapping.task_to_proc.items()}

    # ------------------------------------------------------------------ #
    # Cost evaluation in index space (the annealing hot path)
    # ------------------------------------------------------------------ #
    def balance_cost(self, mapping: PacketMapping) -> float:
        """Equation 3 over an index-space mapping (speed-scaled when heterogeneous)."""
        rows = self.balance_rows
        return -sum(rows[i][j] for i, j in mapping.task_to_proc.items())

    def communication_cost(self, mapping: PacketMapping) -> float:
        """Equation 5 over an index-space mapping: one table lookup per task."""
        if not self.comm_enabled:
            return 0.0
        rows = self.comm_rows
        total = 0.0
        for i, j in mapping.task_to_proc.items():
            total += rows[i][j]
        return total

    def total_cost(self, mapping: PacketMapping) -> float:
        """Equation 6 (normalized weighted sum) over an index-space mapping."""
        fb = self.balance_cost(mapping)
        fc = self.communication_cost(mapping)
        return self.weight_comm * fc / self.comm_range + self.weight_balance * fb / self.balance_range

    def incremental_delta(self, changes) -> float:
        """Normalized cost change of one move's ``(task, old, new)`` index triples."""
        brows = self.balance_rows
        rows = self.comm_rows
        balance_delta = 0.0
        comm_delta = 0.0
        for i, old_j, new_j in changes:
            brow = brows[i]
            row = rows[i]
            if old_j is not None:
                balance_delta += brow[old_j]
                comm_delta -= row[old_j]
            if new_j is not None:
                balance_delta -= brow[new_j]
                comm_delta += row[new_j]
        return (
            self.weight_comm * comm_delta / self.comm_range
            + self.weight_balance * balance_delta / self.balance_range
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PacketKernel(n_ready={self.n_ready}, n_idle={self.n_idle}, "
            f"comm_enabled={self.comm_enabled})"
        )
