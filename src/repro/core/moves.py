"""The mapping scheme: random moves over packet mappings (paper §5 step 2a).

At each proposal the algorithm "arbitrarily selects a task ``t_i`` and a
processor ``P_j`` with ``P_j != m_i``":

* if ``P_j`` is idle (holds no packet task), ``t_i`` is (re)assigned to
  ``P_j`` — possibly removing it from another processor, and possibly
  selecting a task that previously was not selected at all;
* if ``P_j`` is busy with another packet task ``t_j``, the two tasks exchange
  processors (and if ``t_i`` was unselected, ``t_j`` becomes unselected —
  the swap then acts as a replacement).

A third elementary move — dropping a selected task back to the unselected
pool — is included with small probability so the chain can also reduce the
number of selected tasks; without it, mappings seeded with a full selection
could never explore partial selections.  This keeps the neighbourhood
irreducible over the whole state space of partial injective mappings.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.packet import AnnealingPacket, PacketMapping

__all__ = ["propose_move"]

TaskId = Hashable
ProcId = int

#: Probability of the "drop a selected task" move.  Small: the balancing term
#: always prefers more selected tasks, so drops are usually rejected anyway,
#: but offering them keeps the move set complete.
_DROP_PROBABILITY = 0.05


def propose_move(packet: AnnealingPacket, mapping: PacketMapping, rng) -> PacketMapping:
    """Return a perturbed copy of *mapping* (never the same object).

    The move is drawn uniformly over (task, processor) pairs as described in
    the paper; degenerate packets (single task on a single processor) may
    yield a mapping equal in value to the input, which the annealer treats as
    a zero-delta proposal.
    """
    new = mapping.copy()
    n_ready = packet.n_ready
    n_idle = packet.n_idle
    if n_ready == 0 or n_idle == 0:
        new.last_change = []
        return new

    # Occasionally drop a selected task (see module docstring).
    if new.n_assigned > 0 and rng.random() < _DROP_PROBABILITY:
        tasks = new.selected_tasks()
        victim = tasks[int(rng.integers(0, len(tasks)))]
        old = new.processor_of(victim)
        new.unassign(victim)
        new.last_change = [(victim, old, None)]
        return new

    task = packet.ready_tasks[int(rng.integers(0, n_ready))]
    current_proc = new.processor_of(task)

    # Choose a processor different from the task's current one (if any).  The
    # draw is over the idle processors minus the current one; instead of
    # materializing that candidate list we draw a position in the reduced
    # range and skip past the current processor's slot — the same bound and
    # therefore the exact same RNG stream as the list-based implementation.
    pos = None if current_proc is None else packet.proc_position.get(current_proc)
    if pos is None:
        proc = packet.idle_processors[int(rng.integers(0, n_idle))]
    else:
        if n_idle == 1:
            # Single processor and the task already sits on it: no alternative
            # placement exists; return the copy unchanged (zero-delta proposal).
            new.last_change = []
            return new
        idx = int(rng.integers(0, n_idle - 1))
        if idx >= pos:
            idx += 1
        proc = packet.idle_processors[idx]

    occupant = new.task_on(proc)
    if occupant is None:
        # Processor is free: move (or newly select) the task onto it.
        new.assign(task, proc)
        new.last_change = [(task, current_proc, proc)]
    elif current_proc is None:
        # Task was unselected and the processor is busy: replace the occupant.
        new.unassign(occupant)
        new.assign(task, proc)
        new.last_change = [(occupant, proc, None), (task, None, proc)]
    else:
        # Both assigned: exchange their processors.
        new.swap(task, occupant)
        new.last_change = [(task, current_proc, proc), (occupant, proc, current_proc)]
    return new
