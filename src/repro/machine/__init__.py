"""Host-configuration substrate: processors, interconnection networks, parameters.

The paper's host configuration ``HC = {P, L}`` is a set of processors plus a
symmetric point-to-point interconnection matrix ``L`` (bus/star, hypercube or
ring in the experiments).  :class:`~repro.machine.machine.Machine` bundles a
:class:`~repro.machine.topology.Topology` with the per-message overhead
parameters (:class:`~repro.machine.params.CommParams`) and precomputes the
hop-distance matrix and shortest routing paths.
"""

from repro.machine.params import CommParams
from repro.machine.topology import Topology
from repro.machine.machine import Machine
from repro.machine.routing import all_pairs_hop_distance, shortest_path

__all__ = [
    "CommParams",
    "Topology",
    "Machine",
    "all_pairs_hop_distance",
    "shortest_path",
]
