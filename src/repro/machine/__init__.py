"""Host-configuration substrate: processors, interconnection networks, parameters.

The paper's host configuration ``HC = {P, L}`` is a set of processors plus a
symmetric point-to-point interconnection matrix ``L`` (bus/star, hypercube or
ring in the experiments).  :class:`~repro.machine.machine.Machine` bundles a
:class:`~repro.machine.topology.Topology` with the per-message overhead
parameters (:class:`~repro.machine.params.CommParams`) and precomputes the
hop-distance matrix and shortest routing paths.
"""

from repro.machine.params import CommParams, normalize_link_weights, normalize_speeds
from repro.machine.topology import Topology
from repro.machine.machine import Machine
from repro.machine import io
from repro.machine.routing import (
    all_pairs_hop_distance,
    all_pairs_weighted_distance,
    shortest_path,
    weighted_shortest_path,
)

__all__ = [
    "CommParams",
    "Topology",
    "Machine",
    "io",
    "all_pairs_hop_distance",
    "all_pairs_weighted_distance",
    "shortest_path",
    "weighted_shortest_path",
    "normalize_speeds",
    "normalize_link_weights",
]
