"""Per-message communication overhead parameters.

The paper characterizes message passing by two derived parameters (§4.2b):

* ``sigma`` — the time to forward (send) one message: ``sigma = 2*S + O``
* ``tau``   — the time to receive or to route one message: ``tau = 2*S + H + O``

where ``S`` is the context-switch time (save + restore processor state),
``O`` the output setup time (preparing the I/O hardware) and ``H`` the header
control time (deciding whether an incoming message must be forwarded).

For the bit-serial linked hypercube systems of the paper ``O = 3 µs`` and
``S = H = 2 µs``, giving ``sigma = 7 µs`` and ``tau = 9 µs``.  Links run at
``BW = 10 Mbit/s`` and one variable is 40 bits, so transferring one variable
over one link takes 4 µs — that is the unit in which the workload generators
express their edge weights.

The module also normalizes the two *heterogeneity* parameter vectors a
machine may carry beyond the paper's identical-processor setup:

* ``speeds`` — per-processor speed factors (a task of base duration ``D``
  executes in ``D / speed`` on that processor), and
* ``link_weights`` — per-link transfer-time multipliers (the per-link volume
  term of equation 4 becomes ``w_ij * omega_link`` on a link of weight
  ``omega_link``).

Both default to the homogeneous unit vectors, under which every downstream
computation is bit-for-bit identical to the original formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from repro.utils.validation import check_non_negative, check_positive

__all__ = ["CommParams", "normalize_speeds", "normalize_link_weights"]


def normalize_speeds(speeds: Optional[Sequence[float]], n_processors: int) -> np.ndarray:
    """Validate and normalize a per-processor speed vector.

    ``None`` means the homogeneous default (all ones).  Every entry must be a
    finite positive number; the length must match the processor count.
    Returns a fresh ``float64`` array.
    """
    if speeds is None:
        return np.ones(n_processors, dtype=np.float64)
    arr = np.asarray([check_positive("speed", s) for s in speeds], dtype=np.float64)
    if arr.shape != (n_processors,):
        raise ValueError(
            f"speeds must have one entry per processor ({n_processors}), got {arr.shape}"
        )
    return arr


def normalize_link_weights(
    link_weights: Optional[Dict[Tuple[int, int], float]],
    links: Sequence[Tuple[int, int]],
    n_processors: int,
) -> Optional[np.ndarray]:
    """Validate a ``{(i, j): weight}`` mapping and expand it to a full matrix.

    Keys are undirected links in either orientation; links not mentioned keep
    weight 1.0.  Weights must be finite and positive, and every key must name
    an existing link.  Returns the symmetric ``float64`` weight matrix, or
    ``None`` for the homogeneous default (``link_weights`` is ``None`` or all
    weights are exactly 1.0), so callers can keep the unit-weight fast path.
    """
    if link_weights is None:
        return None
    link_set = {tuple(sorted(l)) for l in links}
    matrix = np.ones((n_processors, n_processors), dtype=np.float64)
    seen: Dict[Tuple[int, int], float] = {}
    non_unit = False
    for key, weight in link_weights.items():
        i, j = key
        pair = tuple(sorted((int(i), int(j))))
        if pair not in link_set:
            raise ValueError(f"link_weights key {key!r} is not a link of the topology")
        w = check_positive(f"link weight {key!r}", weight)
        if pair in seen and seen[pair] != w:
            raise ValueError(
                f"conflicting weights for link {pair}: {seen[pair]!r} and {w!r} "
                f"(both orientations given)"
            )
        seen[pair] = w
        matrix[pair[0], pair[1]] = matrix[pair[1], pair[0]] = w
        if w != 1.0:
            non_unit = True
    return matrix if non_unit else None


@dataclass(frozen=True)
class CommParams:
    """Communication overhead and bandwidth parameters (times in microseconds).

    Attributes
    ----------
    context_switch:
        ``S`` — time to save and restore the processor state (µs).
    output_setup:
        ``O`` — time to prepare the I/O hardware for an outgoing message (µs).
    header_control:
        ``H`` — time to inspect an incoming header and decide on routing (µs).
    bandwidth_bits_per_us:
        Link bandwidth in bits per microsecond (10 Mbit/s = 10 bits/µs).
    bits_per_word:
        Number of bits of one program variable (40 in the paper).
    """

    context_switch: float = 2.0
    output_setup: float = 3.0
    header_control: float = 2.0
    bandwidth_bits_per_us: float = 10.0
    bits_per_word: float = 40.0

    def __post_init__(self) -> None:
        check_non_negative("context_switch", self.context_switch)
        check_non_negative("output_setup", self.output_setup)
        check_non_negative("header_control", self.header_control)
        check_positive("bandwidth_bits_per_us", self.bandwidth_bits_per_us)
        check_positive("bits_per_word", self.bits_per_word)

    @property
    def sigma(self) -> float:
        """Time to forward (send) one message: ``2*S + O`` (µs)."""
        return 2.0 * self.context_switch + self.output_setup

    @property
    def tau(self) -> float:
        """Time to receive or route one message: ``2*S + H + O`` (µs)."""
        return 2.0 * self.context_switch + self.header_control + self.output_setup

    def word_transfer_time(self, n_words: float = 1.0) -> float:
        """Time (µs) to push *n_words* program variables over a single link."""
        check_non_negative("n_words", n_words)
        return n_words * self.bits_per_word / self.bandwidth_bits_per_us

    @classmethod
    def paper_defaults(cls) -> "CommParams":
        """The exact parameter set used in the paper's experiments."""
        return cls(
            context_switch=2.0,
            output_setup=3.0,
            header_control=2.0,
            bandwidth_bits_per_us=10.0,
            bits_per_word=40.0,
        )

    @classmethod
    def zero_overhead(cls) -> "CommParams":
        """Parameters with no per-message overhead (pure bandwidth model).

        Useful for isolating the distance–volume component of the cost in
        ablation experiments.
        """
        return cls(
            context_switch=0.0,
            output_setup=0.0,
            header_control=0.0,
            bandwidth_bits_per_us=10.0,
            bits_per_word=40.0,
        )
