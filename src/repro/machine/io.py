"""Serialization of machines.

The sweep and the scheduling service address machines by registry name
(``"hypercube8"``, ``"hetero-ring9-2x"``, ...); this module adds the
by-payload path: a :class:`~repro.machine.machine.Machine` round-trips
through a JSON-serializable dictionary carrying the topology (link list),
the communication parameters, the per-processor ``speeds`` and the per-link
``link_weights`` — so a service job can ship a machine the server has never
seen, in the same style :mod:`repro.taskgraph.io` ships task graphs.

Homogeneous defaults are omitted from the payload (``speeds`` /
``link_weights`` keys absent means the unit vectors), which keeps the
reloaded machine on the exact homogeneous fast paths — the round-tripped
machine produces bit-identical distances, routes and costs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

import numpy as np

from repro.exceptions import MachineError
from repro.machine.machine import Machine
from repro.machine.params import CommParams
from repro.machine.topology import Topology

__all__ = ["to_dict", "from_dict", "save_json", "load_json"]

PathLike = Union[str, Path]
_FORMAT_VERSION = 1

_PARAM_FIELDS = (
    "context_switch",
    "output_setup",
    "header_control",
    "bandwidth_bits_per_us",
    "bits_per_word",
)


def to_dict(machine: Machine) -> dict:
    """Convert *machine* to a JSON-serializable dictionary."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "name": machine.name,
        "n_processors": machine.n_processors,
        "topology_name": machine.topology.name,
        "links": [[int(i), int(j)] for i, j in machine.topology.links()],
        "params": {
            field: float(getattr(machine.params, field)) for field in _PARAM_FIELDS
        },
    }
    if not machine.has_unit_speeds:
        payload["speeds"] = [float(s) for s in machine.speeds]
    if not machine.has_unit_link_weights:
        payload["link_weights"] = [
            [int(i), int(j), machine.link_weight(i, j)]
            for i, j in machine.topology.links()
            if machine.link_weight(i, j) != 1.0
        ]
    return payload


def from_dict(data: dict) -> Machine:
    """Rebuild a :class:`Machine` from a dictionary produced by :func:`to_dict`.

    Raises :class:`~repro.exceptions.MachineError` on structurally invalid
    payloads (missing keys, malformed links, out-of-range endpoints), so
    callers handling untrusted input (the service job protocol) get the
    machine taxonomy rather than a bare ``KeyError``/``TypeError``.
    """
    if not isinstance(data, dict):
        raise MachineError(f"machine payload must be a dict, got {type(data).__name__}")
    try:
        n = int(data["n_processors"])
    except (KeyError, TypeError, ValueError):
        raise MachineError("machine payload is missing a valid 'n_processors'")
    if n < 1:
        raise MachineError(f"machine payload needs n_processors >= 1, got {n}")
    links = data.get("links")
    if not isinstance(links, list):
        raise MachineError("machine payload is missing its 'links' list")
    adjacency = np.zeros((n, n), dtype=bool)
    for link in links:
        try:
            i, j = (int(link[0]), int(link[1]))
        except (TypeError, ValueError, IndexError):
            raise MachineError(f"malformed link entry {link!r} (expected [i, j])")
        if not (0 <= i < n and 0 <= j < n) or i == j:
            raise MachineError(f"link {link!r} is out of range for {n} processors")
        adjacency[i, j] = adjacency[j, i] = True
    params_data = data.get("params") or {}
    if not isinstance(params_data, dict):
        raise MachineError("machine payload 'params' must be a dict")
    unknown = set(params_data) - set(_PARAM_FIELDS)
    if unknown:
        raise MachineError(f"unknown CommParams fields {sorted(unknown)}")
    try:
        params = CommParams(**{k: float(v) for k, v in params_data.items()})
    except (TypeError, ValueError) as exc:
        raise MachineError(f"invalid CommParams payload: {exc}") from exc
    speeds = data.get("speeds")
    link_weights = None
    if data.get("link_weights") is not None:
        raw = data["link_weights"]
        if not isinstance(raw, list):
            raise MachineError("machine payload 'link_weights' must be a list")
        link_weights = {}
        for entry in raw:
            try:
                i, j, w = int(entry[0]), int(entry[1]), float(entry[2])
            except (TypeError, ValueError, IndexError):
                raise MachineError(
                    f"malformed link_weights entry {entry!r} (expected [i, j, weight])"
                )
            link_weights[(i, j)] = w
    topology = Topology(adjacency, name=str(data.get("topology_name", "custom")))
    return Machine(
        topology,
        params=params,
        name=str(data.get("name") or topology.name),
        speeds=speeds,
        link_weights=link_weights,
    )


def save_json(machine: Machine, path: PathLike, indent: int = 2) -> None:
    """Write *machine* to *path* as JSON."""
    Path(path).write_text(json.dumps(to_dict(machine), indent=indent))


def load_json(path: PathLike) -> Machine:
    """Load a machine previously written with :func:`save_json`."""
    return from_dict(json.loads(Path(path).read_text()))
