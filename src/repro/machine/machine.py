"""The :class:`Machine`: a topology plus communication parameters.

A machine is the paper's host configuration ``HC = {P, L}`` together with the
message-overhead parameters (``sigma``, ``tau``, bandwidth).  It precomputes
and caches the hop-distance matrix and, on demand, the shortest routing paths
used by the contention-aware simulator.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import MachineError
from repro.machine.params import CommParams
from repro.machine.routing import all_pairs_hop_distance, shortest_path
from repro.machine.topology import Topology

__all__ = ["Machine"]


class Machine:
    """A multicomputer: processors, links and message-passing parameters.

    Parameters
    ----------
    topology:
        The interconnection network.  Must be connected so that every task
        placement is feasible.
    params:
        Per-message overhead and bandwidth parameters; defaults to the
        paper's values (σ = 7 µs, τ = 9 µs, 10 Mbit/s, 40-bit words).
    name:
        Optional display name; defaults to the topology name.

    Examples
    --------
    >>> m = Machine.hypercube(3)
    >>> m.n_processors
    8
    >>> m.distance(0, 7)   # opposite corners of the 3-cube
    3
    """

    def __init__(
        self,
        topology: Topology,
        params: Optional[CommParams] = None,
        name: Optional[str] = None,
    ) -> None:
        if not isinstance(topology, Topology):
            raise MachineError(f"topology must be a Topology, got {type(topology).__name__}")
        if not topology.is_connected():
            raise MachineError(
                f"topology {topology.name!r} is not connected; every processor must be reachable"
            )
        self.topology = topology
        self.params = params if params is not None else CommParams.paper_defaults()
        self.name = name or topology.name
        self._distance = all_pairs_hop_distance(topology)
        self._path_cache: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------ #
    # Processor queries
    # ------------------------------------------------------------------ #
    @property
    def n_processors(self) -> int:
        return self.topology.n_processors

    @property
    def processors(self) -> List[int]:
        """Processor identifiers ``0 .. N_p - 1``."""
        return list(range(self.n_processors))

    def distance(self, i: int, j: int) -> int:
        """Hop distance ``d(i, j)`` between processors *i* and *j*."""
        self.topology._check_proc(i)
        self.topology._check_proc(j)
        return int(self._distance[i, j])

    def distance_matrix(self) -> np.ndarray:
        """A copy of the full hop-distance matrix."""
        return self._distance.copy()

    def distances_from(self, src: int, dsts=None) -> np.ndarray:
        """Hop distances from *src* to *dsts* (default: every processor).

        Returns a fresh integer array; *dsts* may be any sequence of processor
        indices (out-of-range indices raise ``IndexError``).  This is the
        vectorized counterpart of :meth:`distance`, used by the packet-kernel
        communication-table builder.
        """
        self.topology._check_proc(src)
        if dsts is None:
            return self._distance[src].copy()
        indices = np.asarray(dsts, dtype=np.intp)
        if indices.size and (indices.min() < 0 or indices.max() >= self.n_processors):
            raise IndexError(
                f"processor indices must be in [0, {self.n_processors}), got {dsts!r}"
            )
        return self._distance[src, indices]

    @property
    def diameter(self) -> int:
        """The largest hop distance between any two processors."""
        return int(self._distance.max())

    def route(self, src: int, dst: int) -> List[int]:
        """One deterministic shortest processor path from *src* to *dst* (inclusive)."""
        key = (src, dst)
        if key not in self._path_cache:
            self._path_cache[key] = shortest_path(self.topology, src, dst)
        return list(self._path_cache[key])

    def link_path(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """The undirected links (as sorted pairs) traversed from *src* to *dst*."""
        nodes = self.route(src, dst)
        return [tuple(sorted((nodes[k], nodes[k + 1]))) for k in range(len(nodes) - 1)]

    # ------------------------------------------------------------------ #
    # Constructors mirroring the paper's architectures
    # ------------------------------------------------------------------ #
    @classmethod
    def hypercube(cls, dimension: int, params: Optional[CommParams] = None) -> "Machine":
        """The paper's architecture 1 with ``dimension = 3`` (8 processors)."""
        return cls(Topology.hypercube(dimension), params)

    @classmethod
    def bus(cls, n_processors: int, params: Optional[CommParams] = None) -> "Machine":
        """The paper's architecture 2: a bus (star) with *n_processors* nodes."""
        return cls(Topology.bus(n_processors), params)

    @classmethod
    def ring(cls, n_processors: int, params: Optional[CommParams] = None) -> "Machine":
        """The paper's architecture 3: a ring with *n_processors* nodes (9 in the paper)."""
        return cls(Topology.ring(n_processors), params)

    @classmethod
    def fully_connected(cls, n_processors: int, params: Optional[CommParams] = None) -> "Machine":
        return cls(Topology.fully_connected(n_processors), params)

    @classmethod
    def mesh(cls, rows: int, cols: int, params: Optional[CommParams] = None) -> "Machine":
        return cls(Topology.mesh(rows, cols), params)

    @classmethod
    def paper_architectures(cls, params: Optional[CommParams] = None) -> Dict[str, "Machine"]:
        """The three architectures of the paper's evaluation, keyed by display name."""
        return {
            "Hypercube (8p)": cls.hypercube(3, params),
            "Bus (8p)": cls.bus(8, params),
            "Ring (9p)": cls.ring(9, params),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Machine({self.name!r}, n_processors={self.n_processors}, diameter={self.diameter})"
