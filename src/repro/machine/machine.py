"""The :class:`Machine`: a topology plus communication parameters.

A machine is the paper's host configuration ``HC = {P, L}`` together with the
message-overhead parameters (``sigma``, ``tau``, bandwidth).  It precomputes
and caches the hop-distance matrix and, on demand, the shortest routing paths
used by the contention-aware simulator.

Beyond the paper's identical-processor setup, a machine may be
*heterogeneous*:

* ``speeds`` assigns each processor a positive speed factor — a task of base
  duration ``D`` executes in ``D / speed`` there, and
* ``link_weights`` assigns each link a positive transfer-time multiplier —
  the volume term of the equation-4 cost accumulates ``sum(link weight)``
  along the route instead of the hop count, and routes are minimum-weight
  paths (ties broken by hop count).

Both default to the homogeneous unit vectors, for which every derived
quantity (distances, routes, costs) is bit-for-bit identical to the original
homogeneous implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exceptions import MachineError
from repro.machine.params import CommParams, normalize_link_weights, normalize_speeds
from repro.machine.routing import (
    all_pairs_hop_distance,
    all_pairs_routes,
    all_pairs_weighted_distance,
    all_pairs_weighted_routes,
    shortest_path,
    weighted_shortest_path,
)
from repro.machine.topology import Topology

__all__ = ["Machine"]

LinkWeights = Dict[Tuple[int, int], float]


class Machine:
    """A multicomputer: processors, links and message-passing parameters.

    Parameters
    ----------
    topology:
        The interconnection network.  Must be connected so that every task
        placement is feasible.
    params:
        Per-message overhead and bandwidth parameters; defaults to the
        paper's values (σ = 7 µs, τ = 9 µs, 10 Mbit/s, 40-bit words).
    name:
        Optional display name; defaults to the topology name.
    speeds:
        Optional per-processor speed factors (one positive float per
        processor).  ``None`` (default) means identical unit-speed
        processors, the paper's setup.
    link_weights:
        Optional ``{(i, j): weight}`` per-link transfer-time multipliers for
        a subset of the links (unmentioned links keep weight 1.0).  ``None``
        (default) means unit-weight links.

    Examples
    --------
    >>> m = Machine.hypercube(3)
    >>> m.n_processors
    8
    >>> m.distance(0, 7)   # opposite corners of the 3-cube
    3
    >>> fast = Machine.ring(4, speeds=[1.0, 2.0, 1.0, 2.0])
    >>> fast.speed_of(1)
    2.0
    """

    def __init__(
        self,
        topology: Topology,
        params: Optional[CommParams] = None,
        name: Optional[str] = None,
        speeds: Optional[Sequence[float]] = None,
        link_weights: Optional[LinkWeights] = None,
    ) -> None:
        if not isinstance(topology, Topology):
            raise MachineError(f"topology must be a Topology, got {type(topology).__name__}")
        if not topology.is_connected():
            raise MachineError(
                f"topology {topology.name!r} is not connected; every processor must be reachable"
            )
        self.topology = topology
        self.params = params if params is not None else CommParams.paper_defaults()
        self.name = name or topology.name
        try:
            self._speeds = normalize_speeds(speeds, topology.n_processors)
        except ValueError as exc:
            raise MachineError(str(exc)) from exc
        self._unit_speeds = bool(np.all(self._speeds == 1.0))
        try:
            self._link_weight_matrix = normalize_link_weights(
                link_weights, topology.links(), topology.n_processors
            )
        except ValueError as exc:
            raise MachineError(str(exc)) from exc
        if self._link_weight_matrix is None:
            # Homogeneous links: the weighted distance matrix *is* the integer
            # hop matrix, so weighted queries return the exact same values
            # (and cost formulas the exact same floats) as the original code.
            self._distance = all_pairs_hop_distance(topology)
            self._wdistance = self._distance
        else:
            wdist, whops = all_pairs_weighted_distance(topology, self._link_weight_matrix)
            self._distance = whops  # hop counts along the chosen weighted routes
            self._wdistance = wdist
        self._path_cache: Dict[Tuple[int, int], List[int]] = {}

    # ------------------------------------------------------------------ #
    # Processor queries
    # ------------------------------------------------------------------ #
    @property
    def n_processors(self) -> int:
        return self.topology.n_processors

    @property
    def processors(self) -> List[int]:
        """Processor identifiers ``0 .. N_p - 1``."""
        return list(range(self.n_processors))

    # ------------------------------------------------------------------ #
    # Heterogeneity queries
    # ------------------------------------------------------------------ #
    @property
    def speeds(self) -> np.ndarray:
        """A copy of the per-processor speed vector (all ones when homogeneous)."""
        return self._speeds.copy()

    def speed_of(self, proc: int) -> float:
        """The speed factor of processor *proc* (1.0 on homogeneous machines)."""
        self.topology._check_proc(proc)
        return float(self._speeds[proc])

    @property
    def has_unit_speeds(self) -> bool:
        """True when every processor runs at speed exactly 1.0."""
        return self._unit_speeds

    @property
    def has_unit_link_weights(self) -> bool:
        """True when every link has transfer-time multiplier exactly 1.0."""
        return self._link_weight_matrix is None

    @property
    def is_heterogeneous(self) -> bool:
        """True when the machine deviates from unit speeds or unit link weights."""
        return not (self._unit_speeds and self._link_weight_matrix is None)

    def link_weight(self, i: int, j: int) -> float:
        """The transfer-time multiplier of the link joining *i* and *j*.

        Raises :class:`MachineError` when the processors are not directly
        linked.
        """
        if not self.topology.has_link(i, j):
            raise MachineError(f"processors {i} and {j} are not directly linked")
        if self._link_weight_matrix is None:
            return 1.0
        return float(self._link_weight_matrix[i, j])

    # ------------------------------------------------------------------ #
    # Distances
    # ------------------------------------------------------------------ #
    def distance(self, i: int, j: int) -> int:
        """Hop distance ``d(i, j)`` between processors *i* and *j*.

        On weighted machines this is the hop count of the chosen
        minimum-weight route (which the routing-overhead term of equation 4
        charges per intermediate processor).
        """
        self.topology._check_proc(i)
        self.topology._check_proc(j)
        return int(self._distance[i, j])

    def distance_matrix(self) -> np.ndarray:
        """A copy of the full hop-distance matrix."""
        return self._distance.copy()

    def distances_from(self, src: int, dsts=None) -> np.ndarray:
        """Hop distances from *src* to *dsts* (default: every processor).

        Returns a fresh integer array; *dsts* may be any sequence of processor
        indices (out-of-range indices raise ``IndexError``).  This is the
        vectorized counterpart of :meth:`distance`, used by the packet-kernel
        communication-table builder.
        """
        self.topology._check_proc(src)
        if dsts is None:
            return self._distance[src].copy()
        indices = np.asarray(dsts, dtype=np.intp)
        if indices.size and (indices.min() < 0 or indices.max() >= self.n_processors):
            raise IndexError(
                f"processor indices must be in [0, {self.n_processors}), got {dsts!r}"
            )
        return self._distance[src, indices]

    def weighted_distance(self, i: int, j: int) -> float:
        """Total link weight along the route from *i* to *j*.

        Equals :meth:`distance` exactly on unit-weight machines.
        """
        self.topology._check_proc(i)
        self.topology._check_proc(j)
        return float(self._wdistance[i, j])

    def weighted_distance_matrix(self) -> np.ndarray:
        """A copy of the full weighted-distance matrix."""
        return self._wdistance.copy()

    def weighted_distances_from(self, src: int, dsts=None) -> np.ndarray:
        """Weighted distances from *src* to *dsts* (default: every processor).

        On unit-weight machines this returns the same integer values as
        :meth:`distances_from`, so downstream float arithmetic is
        bit-identical to the homogeneous implementation.
        """
        self.topology._check_proc(src)
        if dsts is None:
            return self._wdistance[src].copy()
        indices = np.asarray(dsts, dtype=np.intp)
        if indices.size and (indices.min() < 0 or indices.max() >= self.n_processors):
            raise IndexError(
                f"processor indices must be in [0, {self.n_processors}), got {dsts!r}"
            )
        return self._wdistance[src, indices]

    @property
    def diameter(self) -> int:
        """The largest hop distance between any two processors."""
        return int(self._distance.max())

    @property
    def weighted_diameter(self) -> float:
        """The largest weighted distance between any two processors.

        Equals :attr:`diameter` (as the same integer value) on unit-weight
        machines.
        """
        if self._link_weight_matrix is None:
            return self.diameter
        return float(self._wdistance.max())

    def route(self, src: int, dst: int) -> List[int]:
        """One deterministic shortest processor path from *src* to *dst* (inclusive).

        Minimum hop count on unit-weight machines; minimum total link weight
        (ties broken by hop count) on weighted machines.
        """
        key = (src, dst)
        if key not in self._path_cache:
            if self._link_weight_matrix is None:
                self._path_cache[key] = shortest_path(self.topology, src, dst)
            else:
                self._path_cache[key] = weighted_shortest_path(
                    self.topology, self._link_weight_matrix, src, dst
                )
        return list(self._path_cache[key])

    def all_routes(self) -> List[List[List[int]]]:
        """All-pairs deterministic routes, ``routes[src][dst]`` node paths.

        Computed with one BFS/Dijkstra parent pass per source
        (:func:`~repro.machine.routing.all_pairs_routes` and its weighted
        counterpart), which yields exactly the per-pair :meth:`route` paths;
        the result also primes the per-pair path cache.  Used by the
        compiled contention tables, which need every ordered pair at once.
        """
        if self._link_weight_matrix is None:
            routes = all_pairs_routes(self.topology)
        else:
            routes = all_pairs_weighted_routes(self.topology, self._link_weight_matrix)
        for src in range(self.n_processors):
            for dst in range(self.n_processors):
                self._path_cache.setdefault((src, dst), routes[src][dst])
        return routes

    def link_path(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """The undirected links (as sorted pairs) traversed from *src* to *dst*."""
        nodes = self.route(src, dst)
        return [tuple(sorted((nodes[k], nodes[k + 1]))) for k in range(len(nodes) - 1)]

    # ------------------------------------------------------------------ #
    # Constructors mirroring the paper's architectures
    # ------------------------------------------------------------------ #
    @classmethod
    def hypercube(
        cls,
        dimension: int,
        params: Optional[CommParams] = None,
        speeds: Optional[Sequence[float]] = None,
        link_weights: Optional[LinkWeights] = None,
    ) -> "Machine":
        """The paper's architecture 1 with ``dimension = 3`` (8 processors)."""
        return cls(Topology.hypercube(dimension), params, speeds=speeds, link_weights=link_weights)

    @classmethod
    def bus(
        cls,
        n_processors: int,
        params: Optional[CommParams] = None,
        speeds: Optional[Sequence[float]] = None,
        link_weights: Optional[LinkWeights] = None,
    ) -> "Machine":
        """The paper's architecture 2: a bus (star) with *n_processors* nodes."""
        return cls(Topology.bus(n_processors), params, speeds=speeds, link_weights=link_weights)

    @classmethod
    def ring(
        cls,
        n_processors: int,
        params: Optional[CommParams] = None,
        speeds: Optional[Sequence[float]] = None,
        link_weights: Optional[LinkWeights] = None,
    ) -> "Machine":
        """The paper's architecture 3: a ring with *n_processors* nodes (9 in the paper)."""
        return cls(Topology.ring(n_processors), params, speeds=speeds, link_weights=link_weights)

    @classmethod
    def fully_connected(
        cls,
        n_processors: int,
        params: Optional[CommParams] = None,
        speeds: Optional[Sequence[float]] = None,
        link_weights: Optional[LinkWeights] = None,
    ) -> "Machine":
        return cls(
            Topology.fully_connected(n_processors), params, speeds=speeds, link_weights=link_weights
        )

    @classmethod
    def mesh(
        cls,
        rows: int,
        cols: int,
        params: Optional[CommParams] = None,
        speeds: Optional[Sequence[float]] = None,
        link_weights: Optional[LinkWeights] = None,
    ) -> "Machine":
        return cls(Topology.mesh(rows, cols), params, speeds=speeds, link_weights=link_weights)

    @classmethod
    def paper_architectures(cls, params: Optional[CommParams] = None) -> Dict[str, "Machine"]:
        """The three architectures of the paper's evaluation, keyed by display name."""
        return {
            "Hypercube (8p)": cls.hypercube(3, params),
            "Bus (8p)": cls.bus(8, params),
            "Ring (9p)": cls.ring(9, params),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        hetero = ", heterogeneous" if self.is_heterogeneous else ""
        return (
            f"Machine({self.name!r}, n_processors={self.n_processors}, "
            f"diameter={self.diameter}{hetero})"
        )
