"""Interconnection-network topologies.

A :class:`Topology` is the processor interconnection matrix ``L`` of the
paper: ``L[i, j] = 1`` when processors ``P_i`` and ``P_j`` are joined by a
bidirectional point-to-point link.  Constructors are provided for the three
topologies of the paper's experiments (hypercube, bus/star, ring) and for a
number of other standard networks used by the extension benchmarks (mesh,
torus, binary tree, linear array, fully connected, custom adjacency).

The *bus* of the paper is modelled as a star: the authors describe it as "a
bus (star) topology with 8 processors", i.e. processor 0 acts as the hub
through which every message travels, which makes all non-hub processors two
hops apart and serializes traffic through the hub's links.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.exceptions import TopologyError

__all__ = ["Topology"]


class Topology:
    """A symmetric, loop-free interconnection network over ``n`` processors.

    Parameters
    ----------
    adjacency:
        Square boolean (or 0/1) matrix; ``adjacency[i, j]`` true means a
        bidirectional link between processors *i* and *j*.  The matrix is
        symmetrized and the diagonal is cleared.
    name:
        Human-readable topology name used in reports.
    """

    def __init__(self, adjacency, name: str = "custom") -> None:
        mat = np.asarray(adjacency, dtype=bool)
        if mat.ndim != 2 or mat.shape[0] != mat.shape[1]:
            raise TopologyError(f"adjacency must be a square matrix, got shape {mat.shape}")
        if mat.shape[0] < 1:
            raise TopologyError("topology needs at least one processor")
        mat = mat | mat.T
        np.fill_diagonal(mat, False)
        self._adj = mat
        self.name = str(name)

    # ------------------------------------------------------------------ #
    # Basic queries
    # ------------------------------------------------------------------ #
    @property
    def n_processors(self) -> int:
        """Number of processors ``N_p``."""
        return int(self._adj.shape[0])

    def adjacency(self) -> np.ndarray:
        """Return a copy of the boolean adjacency matrix ``L``."""
        return self._adj.copy()

    def has_link(self, i: int, j: int) -> bool:
        """True when a direct link joins processors *i* and *j*."""
        self._check_proc(i)
        self._check_proc(j)
        return bool(self._adj[i, j])

    def links(self) -> List[Tuple[int, int]]:
        """All undirected links as sorted ``(i, j)`` pairs with ``i < j``."""
        idx = np.argwhere(np.triu(self._adj, k=1))
        return [(int(i), int(j)) for i, j in idx]

    @property
    def n_links(self) -> int:
        return len(self.links())

    def neighbors(self, i: int) -> List[int]:
        """Processors directly linked to processor *i*."""
        self._check_proc(i)
        return [int(j) for j in np.flatnonzero(self._adj[i])]

    def degree(self, i: int) -> int:
        self._check_proc(i)
        return int(self._adj[i].sum())

    def is_connected(self) -> bool:
        """True when every processor can reach every other processor."""
        n = self.n_processors
        if n == 1:
            return True
        seen = np.zeros(n, dtype=bool)
        stack = [0]
        seen[0] = True
        while stack:
            u = stack.pop()
            for v in np.flatnonzero(self._adj[u]):
                if not seen[v]:
                    seen[v] = True
                    stack.append(int(v))
        return bool(seen.all())

    def _check_proc(self, i: int) -> None:
        if not (0 <= i < self.n_processors):
            raise TopologyError(
                f"processor index {i} out of range [0, {self.n_processors})"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Topology({self.name!r}, n_processors={self.n_processors}, n_links={self.n_links})"

    def __eq__(self, other) -> bool:
        if not isinstance(other, Topology):
            return NotImplemented
        return self._adj.shape == other._adj.shape and bool(np.array_equal(self._adj, other._adj))

    def __hash__(self) -> int:
        return hash((self.n_processors, tuple(self.links())))

    # ------------------------------------------------------------------ #
    # Standard constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_links(cls, n_processors: int, links: Iterable[Tuple[int, int]], name: str = "custom") -> "Topology":
        """Build a topology from an explicit link list."""
        if n_processors < 1:
            raise TopologyError("topology needs at least one processor")
        adj = np.zeros((n_processors, n_processors), dtype=bool)
        for i, j in links:
            if not (0 <= i < n_processors and 0 <= j < n_processors):
                raise TopologyError(f"link ({i}, {j}) references a missing processor")
            if i == j:
                raise TopologyError(f"self-link on processor {i} is not allowed")
            adj[i, j] = adj[j, i] = True
        return cls(adj, name)

    @classmethod
    def fully_connected(cls, n_processors: int) -> "Topology":
        """Every pair of processors joined by a dedicated link (crossbar)."""
        if n_processors < 1:
            raise TopologyError("need at least one processor")
        adj = np.ones((n_processors, n_processors), dtype=bool)
        np.fill_diagonal(adj, False)
        return cls(adj, f"full-{n_processors}")

    @classmethod
    def hypercube(cls, dimension: int) -> "Topology":
        """A ``2**dimension``-node binary hypercube (paper architecture 1 with dimension=3)."""
        if dimension < 0:
            raise TopologyError(f"hypercube dimension must be >= 0, got {dimension}")
        n = 1 << dimension
        adj = np.zeros((n, n), dtype=bool)
        for node in range(n):
            for bit in range(dimension):
                other = node ^ (1 << bit)
                adj[node, other] = True
        return cls(adj, f"hypercube-{n}")

    @classmethod
    def ring(cls, n_processors: int) -> "Topology":
        """A bidirectional ring (paper architecture 3 with 9 processors)."""
        if n_processors < 1:
            raise TopologyError("need at least one processor")
        adj = np.zeros((n_processors, n_processors), dtype=bool)
        if n_processors > 1:
            for i in range(n_processors):
                j = (i + 1) % n_processors
                if i != j:
                    adj[i, j] = adj[j, i] = True
        return cls(adj, f"ring-{n_processors}")

    @classmethod
    def star(cls, n_processors: int, hub: int = 0) -> "Topology":
        """A star: every processor linked to the *hub* processor only."""
        if n_processors < 1:
            raise TopologyError("need at least one processor")
        if not (0 <= hub < n_processors):
            raise TopologyError(f"hub {hub} out of range")
        adj = np.zeros((n_processors, n_processors), dtype=bool)
        for i in range(n_processors):
            if i != hub:
                adj[hub, i] = adj[i, hub] = True
        return cls(adj, f"star-{n_processors}")

    @classmethod
    def bus(cls, n_processors: int) -> "Topology":
        """The paper's "bus (star)" topology: a star with processor 0 as hub.

        Messages between two non-hub processors travel two hops through the
        hub, which both adds routing overhead and serializes traffic — the
        behaviour the paper attributes to its bus architecture.
        """
        topo = cls.star(n_processors, hub=0)
        topo.name = f"bus-{n_processors}"
        return topo

    @classmethod
    def linear(cls, n_processors: int) -> "Topology":
        """A linear (open chain) array of processors."""
        if n_processors < 1:
            raise TopologyError("need at least one processor")
        adj = np.zeros((n_processors, n_processors), dtype=bool)
        for i in range(n_processors - 1):
            adj[i, i + 1] = adj[i + 1, i] = True
        return cls(adj, f"linear-{n_processors}")

    @classmethod
    def mesh(cls, rows: int, cols: int) -> "Topology":
        """A 2-D mesh of ``rows x cols`` processors (no wraparound)."""
        if rows < 1 or cols < 1:
            raise TopologyError("mesh dimensions must be >= 1")
        n = rows * cols
        adj = np.zeros((n, n), dtype=bool)

        def pid(r: int, c: int) -> int:
            return r * cols + c

        for r in range(rows):
            for c in range(cols):
                if c + 1 < cols:
                    adj[pid(r, c), pid(r, c + 1)] = adj[pid(r, c + 1), pid(r, c)] = True
                if r + 1 < rows:
                    adj[pid(r, c), pid(r + 1, c)] = adj[pid(r + 1, c), pid(r, c)] = True
        return cls(adj, f"mesh-{rows}x{cols}")

    @classmethod
    def torus(cls, rows: int, cols: int) -> "Topology":
        """A 2-D torus (mesh with wraparound links in both dimensions)."""
        if rows < 1 or cols < 1:
            raise TopologyError("torus dimensions must be >= 1")
        n = rows * cols
        adj = np.zeros((n, n), dtype=bool)

        def pid(r: int, c: int) -> int:
            return r * cols + c

        for r in range(rows):
            for c in range(cols):
                right = pid(r, (c + 1) % cols)
                down = pid((r + 1) % rows, c)
                for other in (right, down):
                    if other != pid(r, c):
                        adj[pid(r, c), other] = adj[other, pid(r, c)] = True
        return cls(adj, f"torus-{rows}x{cols}")

    @classmethod
    def binary_tree(cls, depth: int) -> "Topology":
        """A complete binary tree with ``2**(depth+1) - 1`` processors."""
        if depth < 0:
            raise TopologyError(f"tree depth must be >= 0, got {depth}")
        n = (1 << (depth + 1)) - 1
        adj = np.zeros((n, n), dtype=bool)
        for i in range(1, n):
            parent = (i - 1) // 2
            adj[i, parent] = adj[parent, i] = True
        return cls(adj, f"btree-{n}")
