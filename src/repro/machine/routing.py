"""Shortest-path routing over interconnection topologies.

The paper defines the distance ``d(i, j)`` between two processors as the
number of links on the shortest path joining them, and assumes messages are
forwarded hop by hop along such a path (store-and-forward routing with a
per-hop routing overhead ``tau`` on intermediate processors).

This module provides BFS-based all-pairs hop distances (vectorized over
numpy adjacency matrices) and deterministic shortest-path extraction used by
the contention-aware simulator to decide which links a message occupies.

For machines with *weighted* links (per-link transfer-time multipliers), the
Dijkstra-based counterparts minimize the total link weight along the route,
breaking ties by hop count and then towards lower-numbered processors, so
routes stay deterministic.  With unit link weights the weighted routines
reproduce the BFS results exactly, which keeps default (homogeneous) machines
bit-for-bit unchanged.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import TopologyError
from repro.machine.topology import Topology

__all__ = [
    "all_pairs_hop_distance",
    "shortest_path",
    "routing_table",
    "all_pairs_routes",
    "all_pairs_weighted_routes",
    "all_pairs_weighted_distance",
    "weighted_dijkstra",
    "weighted_shortest_path",
]

_UNREACHABLE = -1


def all_pairs_hop_distance(topology: Topology) -> np.ndarray:
    """Return the ``N_p x N_p`` integer hop-distance matrix of *topology*.

    Unreachable pairs get distance ``-1``.  The diagonal is zero.  The
    computation is a BFS from every source; adjacency lookups are vectorized
    with numpy boolean indexing, which is fast enough for the machine sizes
    considered here (tens to a few hundred processors).
    """
    adj = topology.adjacency()
    n = topology.n_processors
    dist = np.full((n, n), _UNREACHABLE, dtype=np.int64)
    for src in range(n):
        dist[src, src] = 0
        frontier = np.zeros(n, dtype=bool)
        frontier[src] = True
        visited = frontier.copy()
        hops = 0
        while frontier.any():
            hops += 1
            # all nodes adjacent to the frontier that have not been visited yet
            reachable = adj[frontier].any(axis=0) & ~visited
            if not reachable.any():
                break
            dist[src, reachable] = hops
            visited |= reachable
            frontier = reachable
    return dist


def shortest_path(topology: Topology, src: int, dst: int) -> List[int]:
    """Return one shortest processor path from *src* to *dst*, inclusive.

    The path is deterministic: BFS explores neighbours in increasing index
    order, so ties are always broken towards lower-numbered processors.
    Raises :class:`TopologyError` when no path exists.
    """
    n = topology.n_processors
    if not (0 <= src < n) or not (0 <= dst < n):
        raise TopologyError(f"processor index out of range: src={src}, dst={dst}")
    if src == dst:
        return [src]
    parent: Dict[int, int] = {src: src}
    queue: deque[int] = deque([src])
    while queue:
        u = queue.popleft()
        for v in topology.neighbors(u):
            if v not in parent:
                parent[v] = u
                if v == dst:
                    queue.clear()
                    break
                queue.append(v)
    if dst not in parent:
        raise TopologyError(
            f"no path between processors {src} and {dst} in topology {topology.name!r}"
        )
    path = [dst]
    while path[-1] != src:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def _paths_from_parents(src: int, parent: List[int], n: int) -> List[List[int]]:
    """Extract one path per destination from a shortest-path parent tree.

    Paths are built in increasing destination order, reusing the already
    extracted prefix of each parent (every node's path is its parent's path
    plus itself), so the whole batch costs O(total path length).
    Unreachable destinations get an empty list.
    """
    paths: List[List[int]] = [[] for _ in range(n)]
    paths[src] = [src]
    for dst in range(n):
        if paths[dst] or dst == src:
            continue
        chain = []
        node = dst
        while node != src and not paths[node]:
            chain.append(node)
            node = parent[node]
            if node < 0:
                break
        if node < 0 or (node != src and not paths[node]):
            continue  # unreachable
        prefix = paths[node] if node != src else paths[src]
        for hop in reversed(chain):
            prefix = prefix + [hop]
            paths[hop] = prefix
    return paths


def all_pairs_routes(topology: Topology) -> List[List[List[int]]]:
    """Deterministic shortest routes for every ordered processor pair.

    ``routes[src][dst]`` is the node path from *src* to *dst* (inclusive;
    empty when unreachable).  One BFS parent tree is built per source —
    neighbours explored in increasing index order assign each node the same
    first-discovery parent as the per-pair :func:`shortest_path`, so every
    extracted route is **identical** to the per-pair result (which is what
    the contention simulators charge link occupancy on).
    """
    n = topology.n_processors
    routes: List[List[List[int]]] = []
    for src in range(n):
        parent = [-1] * n
        parent[src] = src
        queue: deque[int] = deque([src])
        while queue:
            u = queue.popleft()
            for v in topology.neighbors(u):
                if parent[v] < 0:
                    parent[v] = u
                    queue.append(v)
        parent[src] = src
        routes.append(_paths_from_parents(src, parent, n))
    return routes


def all_pairs_weighted_routes(
    topology: Topology, weights: np.ndarray
) -> List[List[List[int]]]:
    """Minimum-weight counterpart of :func:`all_pairs_routes`.

    One Dijkstra parent tree per source; ties broken by hop count then
    towards lower-numbered processors, exactly like
    :func:`weighted_shortest_path` (which extracts from the same parent
    array), so routes match the per-pair calls bit for bit.
    """
    n = topology.n_processors
    routes: List[List[List[int]]] = []
    for src in range(n):
        _dist, _hops, parent = weighted_dijkstra(topology, weights, src)
        parent[src] = src
        routes.append(_paths_from_parents(src, parent, n))
    return routes


def weighted_dijkstra(
    topology: Topology, weights: np.ndarray, src: int
) -> Tuple[List[float], List[int], List[int]]:
    """Single-source shortest paths under per-link *weights*.

    Returns ``(dist, hops, parent)`` where ``dist[v]`` is the minimum total
    link weight from *src* to *v*, ``hops[v]`` the hop count of the chosen
    path and ``parent[v]`` its predecessor (``-1`` for *src* and unreachable
    nodes).  Paths are chosen by lexicographic ``(dist, hops)`` minimization
    with neighbours explored in increasing index order, so the result is
    deterministic.
    """
    n = topology.n_processors
    if not (0 <= src < n):
        raise TopologyError(f"processor index out of range: src={src}")
    inf = float("inf")
    dist = [inf] * n
    hops = [n + 1] * n
    parent = [-1] * n
    dist[src] = 0.0
    hops[src] = 0
    heap: List[Tuple[float, int, int]] = [(0.0, 0, src)]
    while heap:
        d, h, u = heapq.heappop(heap)
        if d > dist[u] or (d == dist[u] and h > hops[u]):
            continue
        for v in topology.neighbors(u):
            nd = d + float(weights[u, v])
            nh = h + 1
            if nd < dist[v] or (nd == dist[v] and nh < hops[v]):
                dist[v], hops[v], parent[v] = nd, nh, u
                heapq.heappush(heap, (nd, nh, v))
    for v in range(n):
        if dist[v] == inf:
            hops[v] = _UNREACHABLE
    return dist, hops, parent


def all_pairs_weighted_distance(
    topology: Topology, weights: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """All-pairs ``(weighted distance, hop count)`` matrices under *weights*.

    The hop counts are the hop lengths of the chosen minimum-weight routes
    (minimal hop count among minimum-weight paths), so the pair describes one
    consistent route per processor pair.  Unreachable pairs get ``inf`` /
    ``-1``.
    """
    n = topology.n_processors
    wdist = np.zeros((n, n), dtype=np.float64)
    whops = np.zeros((n, n), dtype=np.int64)
    for src in range(n):
        dist, hops, _ = weighted_dijkstra(topology, weights, src)
        wdist[src] = dist
        whops[src] = hops
    return wdist, whops


def weighted_shortest_path(
    topology: Topology, weights: np.ndarray, src: int, dst: int
) -> List[int]:
    """One deterministic minimum-weight processor path from *src* to *dst*.

    Ties between equal-weight paths are broken by hop count; the route is the
    one the contention-aware simulator charges link occupancy on.  Raises
    :class:`TopologyError` when no path exists.
    """
    n = topology.n_processors
    if not (0 <= src < n) or not (0 <= dst < n):
        raise TopologyError(f"processor index out of range: src={src}, dst={dst}")
    if src == dst:
        return [src]
    dist, _hops, parent = weighted_dijkstra(topology, weights, src)
    if dist[dst] == float("inf"):
        raise TopologyError(
            f"no path between processors {src} and {dst} in topology {topology.name!r}"
        )
    path = [dst]
    while path[-1] != src:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def routing_table(topology: Topology) -> Dict[Tuple[int, int], List[int]]:
    """Precompute shortest paths for every ordered processor pair.

    Only used by the contention-aware simulator; the latency-only model needs
    just the distance matrix.
    """
    table: Dict[Tuple[int, int], List[int]] = {}
    n = topology.n_processors
    for src in range(n):
        for dst in range(n):
            table[(src, dst)] = shortest_path(topology, src, dst)
    return table
