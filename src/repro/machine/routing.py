"""Shortest-path routing over interconnection topologies.

The paper defines the distance ``d(i, j)`` between two processors as the
number of links on the shortest path joining them, and assumes messages are
forwarded hop by hop along such a path (store-and-forward routing with a
per-hop routing overhead ``tau`` on intermediate processors).

This module provides BFS-based all-pairs hop distances (vectorized over
numpy adjacency matrices) and deterministic shortest-path extraction used by
the contention-aware simulator to decide which links a message occupies.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import TopologyError
from repro.machine.topology import Topology

__all__ = ["all_pairs_hop_distance", "shortest_path", "routing_table"]

_UNREACHABLE = -1


def all_pairs_hop_distance(topology: Topology) -> np.ndarray:
    """Return the ``N_p x N_p`` integer hop-distance matrix of *topology*.

    Unreachable pairs get distance ``-1``.  The diagonal is zero.  The
    computation is a BFS from every source; adjacency lookups are vectorized
    with numpy boolean indexing, which is fast enough for the machine sizes
    considered here (tens to a few hundred processors).
    """
    adj = topology.adjacency()
    n = topology.n_processors
    dist = np.full((n, n), _UNREACHABLE, dtype=np.int64)
    for src in range(n):
        dist[src, src] = 0
        frontier = np.zeros(n, dtype=bool)
        frontier[src] = True
        visited = frontier.copy()
        hops = 0
        while frontier.any():
            hops += 1
            # all nodes adjacent to the frontier that have not been visited yet
            reachable = adj[frontier].any(axis=0) & ~visited
            if not reachable.any():
                break
            dist[src, reachable] = hops
            visited |= reachable
            frontier = reachable
    return dist


def shortest_path(topology: Topology, src: int, dst: int) -> List[int]:
    """Return one shortest processor path from *src* to *dst*, inclusive.

    The path is deterministic: BFS explores neighbours in increasing index
    order, so ties are always broken towards lower-numbered processors.
    Raises :class:`TopologyError` when no path exists.
    """
    n = topology.n_processors
    if not (0 <= src < n) or not (0 <= dst < n):
        raise TopologyError(f"processor index out of range: src={src}, dst={dst}")
    if src == dst:
        return [src]
    parent: Dict[int, int] = {src: src}
    queue: deque[int] = deque([src])
    while queue:
        u = queue.popleft()
        for v in topology.neighbors(u):
            if v not in parent:
                parent[v] = u
                if v == dst:
                    queue.clear()
                    break
                queue.append(v)
    if dst not in parent:
        raise TopologyError(
            f"no path between processors {src} and {dst} in topology {topology.name!r}"
        )
    path = [dst]
    while path[-1] != src:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def routing_table(topology: Topology) -> Dict[Tuple[int, int], List[int]]:
    """Precompute shortest paths for every ordered processor pair.

    Only used by the contention-aware simulator; the latency-only model needs
    just the distance matrix.
    """
    table: Dict[Tuple[int, int], List[int]] = {}
    n = topology.n_processors
    for src in range(n):
        for dst in range(n):
            table[(src, dst)] = shortest_path(topology, src, dst)
    return table
