"""repro — directed task-graph scheduling by simulated annealing.

A from-scratch reproduction of

    E. H. D'Hollander and Y. Devis,
    "Directed Taskgraph Scheduling Using Simulated Annealing",
    Proc. International Conference on Parallel Processing (ICPP), 1991.

The library contains the staged simulated-annealing scheduler (the paper's
contribution, :mod:`repro.core`), the substrates it relies on (task graphs,
machine models, communication costs, a discrete-event execution simulator),
the list-scheduling baselines it is compared against, the four paper
workloads as parametric generators, and experiment drivers regenerating every
table and figure of the evaluation.

Quickstart
----------
>>> from repro import Machine, SAScheduler, HLFScheduler, simulate
>>> from repro.workloads import newton_euler
>>> graph = newton_euler()                 # the paper's NE program (95 tasks)
>>> machine = Machine.hypercube(3)         # 8-processor hypercube
>>> sa = simulate(graph, machine, SAScheduler())
>>> hlf = simulate(graph, machine, HLFScheduler())
>>> sa.speedup() > 0 and hlf.speedup() > 0
True
"""

from repro._version import __version__
from repro.exceptions import (
    ReproError,
    TaskGraphError,
    CycleError,
    UnknownTaskError,
    MachineError,
    TopologyError,
    SchedulingError,
    SimulationError,
    ConfigurationError,
)

# Substrates
from repro.taskgraph import TaskGraph, Task
from repro.machine import Machine, Topology, CommParams
from repro.comm import LinearCommModel, ZeroCommModel, effective_comm_cost

# The paper's scheduler and the baselines
from repro.core import SAConfig, SAScheduler
from repro.schedulers import (
    SchedulingPolicy,
    PacketContext,
    HLFScheduler,
    ETFScheduler,
    FIFOScheduler,
    LPTScheduler,
    RandomScheduler,
)

# Execution simulator
from repro.sim import Simulator, simulate, SimulationResult, render_gantt

__all__ = [
    "__version__",
    # exceptions
    "ReproError",
    "TaskGraphError",
    "CycleError",
    "UnknownTaskError",
    "MachineError",
    "TopologyError",
    "SchedulingError",
    "SimulationError",
    "ConfigurationError",
    # substrates
    "TaskGraph",
    "Task",
    "Machine",
    "Topology",
    "CommParams",
    "LinearCommModel",
    "ZeroCommModel",
    "effective_comm_cost",
    # schedulers
    "SAConfig",
    "SAScheduler",
    "SchedulingPolicy",
    "PacketContext",
    "HLFScheduler",
    "ETFScheduler",
    "FIFOScheduler",
    "LPTScheduler",
    "RandomScheduler",
    # simulator
    "Simulator",
    "simulate",
    "SimulationResult",
    "render_gantt",
]
