"""Compatibility shim so editable installs work without the ``wheel`` package.

The execution environment is offline and does not ship ``wheel``, which the
PEP-660 editable-install path of setuptools < 70 requires.  Keeping this stub
allows ``pip install -e . --no-build-isolation`` (pip falls back to the legacy
``setup.py develop`` route) as well as ``python setup.py develop``.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
