"""Ablation: cooling schedule and acceptance rule of the packet annealer.

The paper does not prescribe a cooling schedule; this ablation compares the
library default (geometric), linear and constant-temperature cooling, and the
paper's sigmoid acceptance versus Metropolis and pure hill climbing, on the
Newton–Euler / hypercube configuration with communication.  The point of the
study is the design note in DESIGN.md: the staged scheduler is robust to the
annealing details because each packet is a small optimization problem — every
variant must stay within a few percent of the default and above the HLF
baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.annealing.acceptance import (
    BoltzmannSigmoidAcceptance,
    GreedyAcceptance,
    MetropolisAcceptance,
)
from repro.annealing.cooling import ConstantTemperature, GeometricCooling, LinearCooling
from repro.comm.model import LinearCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import simulate
from repro.utils.tabulate import format_table
from repro.workloads.suite import paper_program

VARIANTS = {
    "geometric+sigmoid (default)": dict(
        cooling=GeometricCooling(alpha=0.9), acceptance=BoltzmannSigmoidAcceptance()
    ),
    "linear+sigmoid": dict(
        cooling=LinearCooling(step=0.05), acceptance=BoltzmannSigmoidAcceptance()
    ),
    "constant-T+sigmoid": dict(
        cooling=ConstantTemperature(), acceptance=BoltzmannSigmoidAcceptance(),
        initial_temperature=0.2,
    ),
    "geometric+metropolis": dict(
        cooling=GeometricCooling(alpha=0.9), acceptance=MetropolisAcceptance()
    ),
    "hill-climbing": dict(
        cooling=GeometricCooling(alpha=0.9), acceptance=GreedyAcceptance()
    ),
}


def _run_variants():
    graph = paper_program("NE")
    machine = Machine.hypercube(3)
    speedups = {}
    for name, overrides in VARIANTS.items():
        cfg = SAConfig(seed=1, **overrides)
        result = simulate(graph, machine, SAScheduler(cfg), comm_model=LinearCommModel(),
                          record_trace=False)
        speedups[name] = result.speedup()
    hlf = float(np.mean([
        simulate(graph, machine, HLFScheduler(seed=s), comm_model=LinearCommModel(),
                 record_trace=False).speedup()
        for s in range(3)
    ]))
    return speedups, hlf


@pytest.mark.benchmark(group="ablation-cooling")
def test_cooling_and_acceptance_ablation(benchmark, save_artifact):
    speedups, hlf = benchmark.pedantic(_run_variants, rounds=1, iterations=1)
    default = speedups["geometric+sigmoid (default)"]

    # the default must beat the baseline and no variant should collapse
    assert default > hlf
    for name, sp in speedups.items():
        assert sp >= hlf * 0.92, f"variant {name} collapsed below the HLF baseline"
        assert sp >= default * 0.85, f"variant {name} far below the default"

    rows = [[name, sp] for name, sp in speedups.items()] + [["HLF (mean)", hlf]]
    text = format_table(rows, headers=["variant", "speedup"],
                        title="Cooling / acceptance ablation - Newton-Euler on hypercube")
    save_artifact("ablation_cooling", text)
    print("\n" + text)
