"""Benchmark: cross-family policy study on the >= 1000-task workload zoo.

Does SA's edge over the list schedulers survive on realistically *shaped*
DAGs?  The paper's Table 2 answers this only for its four programs; this
study re-asks the question on the workload zoo's policy-study instances
(``build_large``, >= 1000 tasks each) for a representative family subset —
two per group: montage + cybershake (pegasus), bigmerge + grid (elementary),
mapreduce + gridcat (irw).

The {HLF, ETF, LPT} sweep runs twice — once as solo :func:`run_compiled`
calls, once as a single lock-step :func:`run_lanes` batch — with every lane
fingerprint-identical between the two (the batch engine's contract at
1000-task scale) and the aggregate batched-sweep speedup above a loose CI
floor.  SA (paper-default annealing, fixed seeds) then runs solo per cell,
and the per-family mean makespans are ranked.

Measured numbers are persisted to ``BENCH_families.json`` at the repository
root — gated by ``check_floors.py`` — and the ranking table is rendered to
``benchmarks/results/families_ranking.txt``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import SWEEP_POLICIES
from repro.comm.model import LinearCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.sim.compile import compile_scenario
from repro.sim.fast_engine import run_compiled, run_lanes
from repro.taskgraph.families import FAMILIES

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_families.json"

#: Two families per group; every instance is the >= 1000-task build_large.
STUDY_FAMILIES = ("montage", "cybershake", "bigmerge", "grid", "mapreduce", "gridcat")

#: Graph seeds per family.  CI may shrink this; the committed baseline is
#: measured at the default.
N_SEEDS = int(os.environ.get("BENCH_FAMILIES_SEEDS", "2"))

#: Loose CI floor for the batched-sweep speedup.  The batch here is only
#: ``3 policies x 6 families x N_SEEDS`` lanes of 1000-task graphs, so
#: per-lane kernel work dominates and the lock-step amortization is far
#: smaller than bench_batch's 512-lane dag200 sweep (local measurement:
#: ~1.0x, i.e. batching neither helps nor hurts at policy-study scale).
#: The floor pins that lock-stepping ragged 1000-task lanes never becomes a
#: pathological slowdown.
MIN_SPEEDUP = 0.75

#: Timed passes per engine for the list-scheduler sweep; minimum kept.
REPEATS = 2


def _study_scenarios():
    """Compile (family, seed) -> scenario for the study grid."""
    machine = Machine.hypercube(3)
    comm = LinearCommModel()
    scenarios = {}
    for key in STUDY_FAMILIES:
        spec = FAMILIES[key]
        for seed in range(N_SEEDS):
            graph = spec.build_large(seed=seed)
            graph.validate()
            scenarios[(key, seed)] = compile_scenario(
                graph, machine, comm, levels=graph.levels()
            )
    return scenarios


def _rank(mean_makespans):
    """Policy names sorted best (smallest mean makespan) first."""
    return sorted(mean_makespans, key=lambda name: mean_makespans[name])


@pytest.mark.benchmark(group="families")
def test_family_policy_study(benchmark, save_artifact):
    scenarios = _study_scenarios()
    cells = sorted(scenarios)

    # ---- list schedulers: solo vs batched, timed, fingerprint-identical ----
    makespans = {}  # (policy, family, seed) -> makespan
    solo_s = batch_s = float("inf")
    for _ in range(REPEATS):
        solo = {}
        start = time.perf_counter()
        for name, factory in SWEEP_POLICIES.items():
            for cell in cells:
                policy = factory()
                policy.reset()
                solo[(name, cell)] = run_compiled(scenarios[cell], policy)
        solo_s = min(solo_s, time.perf_counter() - start)

        lanes = []
        for name, factory in SWEEP_POLICIES.items():
            for cell in cells:
                policy = factory()
                policy.reset()
                lanes.append((scenarios[cell], policy))
        start = time.perf_counter()
        batched = run_lanes(lanes)
        batch_s = min(batch_s, time.perf_counter() - start)

    lane_keys = [(name, cell) for name in SWEEP_POLICIES for cell in cells]
    for lane_key, result in zip(lane_keys, batched):
        name, (family, seed) = lane_key
        assert solo[lane_key].fingerprint() == result.fingerprint(), (
            f"{name} on {family}-1k seed {seed} diverged between the solo "
            "and batched engines"
        )
        makespans[(name, family, seed)] = result.makespan
    speedup = solo_s / batch_s

    # ---- SA: solo per cell (annealing dominates; no batching to amortize) --
    sa_s = 0.0
    for family, seed in cells:
        policy = SAScheduler(SAConfig.paper_defaults(seed=seed))
        policy.reset()
        start = time.perf_counter()
        result = run_compiled(scenarios[(family, seed)], policy)
        sa_s += time.perf_counter() - start
        makespans[("SA", family, seed)] = result.makespan

    # ---- per-family means, rankings and the SA-vs-ETF verdict -------------
    policies = list(SWEEP_POLICIES) + ["SA"]
    per_family = {}
    for family in STUDY_FAMILIES:
        means = {
            name: sum(makespans[(name, family, s)] for s in range(N_SEEDS)) / N_SEEDS
            for name in policies
        }
        per_family[family] = {
            "n_tasks": FAMILIES[family].expected_tasks(**FAMILIES[family].large_params),
            "mean_makespan": {k: round(v, 3) for k, v in means.items()},
            "ranking": _rank(means),
            "sa_vs_etf": round(means["SA"] / means["ETF"], 4),
        }
    sa_wins = sum(1 for row in per_family.values() if row["sa_vs_etf"] < 1.0)

    payload = {
        "benchmark": "bench_families",
        "scenario": (
            f"workload-zoo build_large instances (>= 1000 tasks) x hypercube8: "
            f"{len(STUDY_FAMILIES)} families x {N_SEEDS} seeds, "
            "{HLF, ETF, LPT} batched + SA solo, latency fidelity, eq-4 comm"
        ),
        "families": list(STUDY_FAMILIES),
        "n_seeds": N_SEEDS,
        "sweep_ms": {
            "solo": round(solo_s * 1e3, 3),
            "batch": round(batch_s * 1e3, 3),
            "sa_solo": round(sa_s * 1e3, 3),
        },
        "batched_sweep_speedup": round(speedup, 2),
        "min_speedup_asserted": MIN_SPEEDUP,
        "per_family": per_family,
        "sa_beats_etf_on": sa_wins,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=1) + "\n")

    # ---- rendered ranking table -------------------------------------------
    lines = [
        "Cross-family policy study: workload zoo at >= 1000 tasks",
        payload["scenario"],
        "",
        f"{'family':<12} {'tasks':>6} " +
        " ".join(f"{name:>10}" for name in policies) +
        "  ranking (best first)",
    ]
    for family, row in per_family.items():
        means = row["mean_makespan"]
        lines.append(
            f"{family:<12} {row['n_tasks']:>6} "
            + " ".join(f"{means[name]:>10.1f}" for name in policies)
            + "  " + " > ".join(row["ranking"])
        )
    lines += [
        "",
        f"SA beats ETF on {sa_wins}/{len(STUDY_FAMILIES)} families "
        f"(sa_vs_etf < 1.0)",
        f"batched {{HLF, ETF, LPT}} sweep: {solo_s * 1e3:.1f}ms solo vs "
        f"{batch_s * 1e3:.1f}ms batched ({speedup:.2f}x); "
        f"SA solo total {sa_s * 1e3:.0f}ms",
    ]
    save_artifact("families_ranking", "\n".join(lines))
    print("\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.2f}x vs solo fast-engine runs at "
        f"policy-study scale (floor {MIN_SPEEDUP}x); see BENCH_families.json"
    )

    # pytest-benchmark timing: one batched ETF pass over the study grid.
    benchmark(
        lambda: run_lanes(
            [(scenarios[cell], SWEEP_POLICIES["ETF"]()) for cell in cells]
        )
    )
