"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a table or a figure)
or one extension/ablation study.  Besides the timing collected by
pytest-benchmark, each benchmark writes its rendered artifact to
``benchmarks/results/<name>.txt`` so the regenerated tables can be inspected
and diffed against the paper (see EXPERIMENTS.md).

The engine-speedup benchmarks (``bench_engine.py`` per fidelity="latency",
``bench_fidelity.py`` per fidelity="contention") share one measurement
scaffold — :func:`time_policy_sweep` over :func:`sweep_graphs` plus the
payload/table builders — so their ``BENCH_*.json`` schemas stay aligned for
``check_floors.py`` and a methodology fix lands in both at once.
"""

from __future__ import annotations

import time
from pathlib import Path

import pytest

from repro.comm.model import LinearCommModel
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.lpt import LPTScheduler
from repro.sim.engine import simulate
from repro.taskgraph.generators import random_dag

RESULTS_DIR = Path(__file__).parent / "results"

#: The list-scheduler trio both engine benchmarks sweep.
SWEEP_POLICIES = {
    "HLF": lambda: HLFScheduler(seed=0),
    "ETF": lambda: ETFScheduler(),
    "LPT": lambda: LPTScheduler(),
}

SWEEP_SCENARIO = (
    "200-task random DAGs (3 seeds) x {HLF, ETF, LPT} x "
    "{hypercube8, ring9}, %s fidelity, eq-4 comm"
)


def sweep_graphs(n_seeds: int = 3):
    """The dag200 instances of the engine-speedup sweeps."""
    return [
        random_dag(200, edge_probability=0.08, mean_duration=15.0, mean_comm=5.0, seed=s)
        for s in range(n_seeds)
    ]


def time_policy_sweep(graphs, machines, fast, fidelity="latency", repeats: int = 2):
    """Wall-clock one engine over the (policy × machine × graph) sweep.

    Returns ``(per-policy seconds per run, {(policy, machine, graph):
    (makespan, n_packets)})`` — the results dict doubles as the
    fast-vs-object equivalence proof.
    """
    per_policy = {}
    results = {}
    for name, factory in SWEEP_POLICIES.items():
        start = time.perf_counter()
        for _ in range(repeats):
            for mi, machine in enumerate(machines):
                for gi, graph in enumerate(graphs):
                    result = simulate(
                        graph, machine, factory(), comm_model=LinearCommModel(),
                        fidelity=fidelity, record_trace=False, fast=fast,
                    )
                    results[(name, mi, gi)] = (result.makespan, result.n_packets)
        n_runs = repeats * len(machines) * len(graphs)
        per_policy[name] = (time.perf_counter() - start) / n_runs
    return per_policy, results


def per_policy_payload(object_s, fast_s):
    """The shared ``per_policy_ms`` BENCH_*.json block."""
    return {
        name: {
            "object": round(object_s[name] * 1e3, 3),
            "fast": round(fast_s[name] * 1e3, 3),
            "speedup": round(object_s[name] / fast_s[name], 2),
        }
        for name in SWEEP_POLICIES
    }


def render_policy_table(title, scenario, per_policy_ms, total_speedup):
    """The shared speedup-table artifact lines (per policy + total row)."""
    lines = [
        title,
        scenario,
        "",
        f"{'policy':<8} {'object':>10} {'fast':>10} {'speedup':>9}",
    ]
    for name, row in per_policy_ms.items():
        lines.append(
            f"{name:<8} {row['object']:>8.2f}ms {row['fast']:>8.2f}ms {row['speedup']:>8.2f}x"
        )
    lines.append(
        f"{'total':<8} {sum(r['object'] for r in per_policy_ms.values()):>8.2f}ms "
        f"{sum(r['fast'] for r in per_policy_ms.values()):>8.2f}ms "
        f"{total_speedup:>8.2f}x"
    )
    return lines


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(results_dir):
    """Return a ``save(name, text)`` callable that persists a rendered artifact."""

    def save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return save
