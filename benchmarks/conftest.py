"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artifact of the paper (a table or a figure)
or one extension/ablation study.  Besides the timing collected by
pytest-benchmark, each benchmark writes its rendered artifact to
``benchmarks/results/<name>.txt`` so the regenerated tables can be inspected
and diffed against the paper (see EXPERIMENTS.md).
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_artifact(results_dir):
    """Return a ``save(name, text)`` callable that persists a rendered artifact."""

    def save(name: str, text: str) -> Path:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        return path

    return save
