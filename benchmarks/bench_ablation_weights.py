"""Ablation: sensitivity of the SA scheduler to the cost weights w_b / w_c.

The paper states the weights "can be tuned to optimize the allocation for the
highest speed-up" but reports only the equal-weight trajectory (Figure 1).
This ablation sweeps w_c over [0, 1] on the Newton–Euler graph (highest C/C
ratio, hence the strongest weight sensitivity) and on the Gauss–Jordan graph
(low C/C ratio) for the 8-node hypercube, and checks that:

* a pure-balance cost (w_c = 0) and a pure-communication cost (w_c = 1) are
  both no better than the best mixed setting — i.e. both cost terms carry
  information,
* the best mixed setting beats the arbitrary-placement HLF baseline on the
  communication-heavy NE graph.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.model import LinearCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import simulate
from repro.utils.tabulate import format_table
from repro.workloads.suite import paper_program

WEIGHTS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _sweep(program: str):
    graph = paper_program(program)
    machine = Machine.hypercube(3)
    speedups = {}
    for wc in WEIGHTS:
        cfg = SAConfig.paper_defaults(seed=1).with_weights(1.0 - wc, wc)
        result = simulate(graph, machine, SAScheduler(cfg), comm_model=LinearCommModel(),
                          record_trace=False)
        speedups[wc] = result.speedup()
    hlf = float(np.mean([
        simulate(graph, machine, HLFScheduler(seed=s), comm_model=LinearCommModel(),
                 record_trace=False).speedup()
        for s in range(3)
    ]))
    return speedups, hlf


@pytest.mark.benchmark(group="ablation-weights")
def test_weight_ablation_newton_euler(benchmark, save_artifact):
    speedups, hlf = benchmark.pedantic(_sweep, args=("NE",), rounds=1, iterations=1)
    best_wc = max(speedups, key=speedups.get)
    best = speedups[best_wc]
    # mixed weights are needed: the extremes must not dominate
    assert best >= speedups[0.0] - 1e-9
    assert best >= speedups[1.0] - 1e-9
    assert 0.0 < best_wc < 1.0 or best > speedups[0.0]
    # communication awareness pays off against the baseline on NE
    assert best > hlf

    rows = [[wc, sp] for wc, sp in speedups.items()] + [["HLF (mean)", hlf]]
    text = format_table(rows, headers=["w_c", "speedup"],
                        title="Weight ablation - Newton-Euler on hypercube (with comm)")
    save_artifact("ablation_weights_ne", text)
    print("\n" + text)


@pytest.mark.benchmark(group="ablation-weights")
def test_weight_ablation_gauss_jordan(benchmark, save_artifact):
    speedups, hlf = benchmark.pedantic(_sweep, args=("GJ",), rounds=1, iterations=1)
    best = max(speedups.values())
    # on the low-C/C Gauss-Jordan graph SA stays competitive with the baseline
    assert best >= hlf * 0.95
    rows = [[wc, sp] for wc, sp in speedups.items()] + [["HLF (mean)", hlf]]
    text = format_table(rows, headers=["w_c", "speedup"],
                        title="Weight ablation - Gauss-Jordan on hypercube (with comm)")
    save_artifact("ablation_weights_gj", text)
    print("\n" + text)
