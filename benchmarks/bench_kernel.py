"""Microbenchmark: the packet-annealing hot path, compiled vs reference.

The compiled packet kernel replaces per-proposal ``comm_model.cost()`` calls
with precomputed dense tables and runs the annealing walk through a fused
loop with bulk RNG draws (:class:`~repro.utils.rng.StreamDraws`).  This
benchmark anneals a fixed bag of synthetic packets through both paths,
asserts they commit identical mappings (same seed → same stream → same
moves), and reports the speedup.  The CI assertion is deliberately loose
(≥ 3×) to tolerate noisy shared runners; typical speedups are 5–8×.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.config import SAConfig
from repro.core.packet import AnnealingPacket
from repro.core.packet_annealer import PacketAnnealer
from repro.machine.machine import Machine


def _make_packet(n_ready: int, n_idle: int, seed: int) -> AnnealingPacket:
    """A synthetic packet in the paper's regime (many candidates, few idle procs)."""
    rng = np.random.default_rng(seed)
    tasks = tuple(f"t{i}" for i in range(n_ready))
    levels = {t: float(rng.uniform(1, 100)) for t in tasks}
    placement = {
        t: tuple(
            (f"p{t}{k}", int(rng.integers(0, 8)), float(rng.uniform(0, 20)))
            for k in range(int(rng.integers(0, 4)))
        )
        for t in tasks
    }
    return AnnealingPacket(
        time=0.0,
        ready_tasks=tasks,
        idle_processors=tuple(range(n_idle)),
        levels=levels,
        predecessor_placement=placement,
    )


def _anneal_all(annealer: PacketAnnealer, packets, machine):
    return [annealer.anneal(p, machine, rng=i).assignment for i, p in enumerate(packets)]


@pytest.mark.benchmark(group="kernel")
def test_packet_kernel_speedup(benchmark, save_artifact):
    machine = Machine.hypercube(3)
    packets = [_make_packet(15, 4, s) for s in range(20)] + [
        _make_packet(30, 8, s) for s in range(10)
    ]
    compiled = PacketAnnealer(SAConfig(seed=0))
    reference = PacketAnnealer(SAConfig(seed=0, compiled=False))

    # Warm-up + equivalence: the kernel must replay the reference bit for bit.
    fast = _anneal_all(compiled, packets, machine)
    slow = _anneal_all(reference, packets, machine)
    assert fast == slow

    t0 = time.perf_counter()
    _anneal_all(reference, packets, machine)
    t_reference = time.perf_counter() - t0

    def run_compiled():
        return _anneal_all(compiled, packets, machine)

    benchmark.pedantic(run_compiled, rounds=3, iterations=1)
    # benchmark.stats is None under --benchmark-disable (CI smoke runs).
    stats = getattr(benchmark, "stats", None)
    t_compiled = stats["min"] if stats else None
    if not t_compiled:
        t0 = time.perf_counter()
        run_compiled()
        t_compiled = time.perf_counter() - t0
    speedup = t_reference / t_compiled

    text = (
        f"packet-annealing hot path over {len(packets)} packets\n"
        f"reference (per-call costs): {t_reference * 1e3:8.1f} ms\n"
        f"compiled kernel:            {t_compiled * 1e3:8.1f} ms\n"
        f"speedup:                    {speedup:8.2f}x\n"
    )
    save_artifact("kernel_speedup", text)
    print("\n" + text)
    assert speedup >= 3.0, f"kernel speedup regressed: {speedup:.2f}x"
