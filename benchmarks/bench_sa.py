"""Benchmark: the annealing-walk tiers and the batched multi-replica engine.

The packet annealer has four performance tiers (see ``SAConfig``): the
*reference* per-call cost evaluation (``compiled=False``), the PR-1 fused
*kernel* walk (``walk="kernel"``), the array-native single-chain walk
(``walk="array"``, the default) and the *batched* lock-step multi-replica
engine (``replicas=B``).  This benchmark anneals the bench_kernel packet bag
(20 × (15 ready, 4 idle) + 10 × (30 ready, 8 idle), hypercube-8) through all
four, asserts the three single-chain tiers commit **identical** mappings
(same seed → same stream → same moves) and that batching is deterministic,
and reports

* the single-chain speedup of the array walk over the reference path
  (target ≥ 3×; CI floor ≥ 2× for noisy shared runners), and
* the per-replica speedup of the batched engine over the reference path
  (target ≥ 8× at B = 128; CI floor ≥ 2×) — batched wall clock divided by
  the replica count, i.e. what one multi-start chain costs.

A second test races the anytime lane **portfolio** (``portfolio=8``:
heterogeneous cooling schedules × initial seeds × temperature scales with
successive-halving culling) against fixed-B multi-start (``replicas=8``) at
the matched draw budget over full SA runs of ``dag200``, ``mapreduce-1k``
and ``gridcat-1k``.  The quality metric is the ratio of total within-packet
cost improvement (portfolio / fixed; both runs are deterministic under the
shared seed, so the ratio is exactly reproducible); the minimum across
families is gated in CI against the ``min_portfolio_quality_asserted``
floor.

An end-to-end row runs SA over the sweep registry's 200-task ``dag200``
family through the object and fast engines (the SA ``fast_assign`` path),
asserting equal fingerprints and zero fallback epochs.

Measured numbers are persisted to ``BENCH_sa.json`` at the repository root
and rendered to ``benchmarks/results/sa_speedup.txt``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.comm.model import LinearCommModel
from repro.core.config import SAConfig
from repro.core.packet import AnnealingPacket
from repro.core.packet_annealer import PacketAnnealer
from repro.core.sa_scheduler import SAScheduler
from repro.experiments.sweep import GRAPH_FAMILIES
from repro.machine.machine import Machine
from repro.sim.engine import simulate

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_sa.json"

#: Loose CI floors (noisy shared runners); the locally measured values —
#: recorded in BENCH_sa.json — are the real targets (>= 3x single-chain,
#: >= 8x per replica batched).
MIN_SINGLE_SPEEDUP = 2.0
MIN_BATCHED_SPEEDUP = 2.0

#: Matched draw budget of the portfolio-quality race: 8 portfolio lanes vs
#: 8 fixed multi-start replicas, both at the paper's per-lane step budget.
PORTFOLIO_LANES = 8
#: CI floor on the worst-family quality ratio.  Deterministic (seeded
#: annealing, no wall clock involved), so any drop means the racing logic
#: itself changed; measured values are ~5-9x (see BENCH_sa.json).
MIN_PORTFOLIO_QUALITY = 1.2

#: Replica count of the batched measurement: big enough that the vectorized
#: lock-step amortizes its per-step numpy dispatch over many lanes (the
#: per-replica cost keeps falling with B; 128 lanes roughly break even with
#: the scalar array walk, 256 beat it).
N_REPLICAS = 256


def _make_packet(n_ready: int, n_idle: int, seed: int) -> AnnealingPacket:
    """A synthetic packet in the paper's regime (many candidates, few idle procs)."""
    rng = np.random.default_rng(seed)
    tasks = tuple(f"t{i}" for i in range(n_ready))
    levels = {t: float(rng.uniform(1, 100)) for t in tasks}
    placement = {
        t: tuple(
            (f"p{t}{k}", int(rng.integers(0, 8)), float(rng.uniform(0, 20)))
            for k in range(int(rng.integers(0, 4)))
        )
        for t in tasks
    }
    return AnnealingPacket(
        time=0.0,
        ready_tasks=tasks,
        idle_processors=tuple(range(n_idle)),
        levels=levels,
        predecessor_placement=placement,
    )


def _packet_bag():
    return [_make_packet(15, 4, s) for s in range(20)] + [
        _make_packet(30, 8, s) for s in range(10)
    ]


def _anneal_all(annealer: PacketAnnealer, packets, machine):
    return [annealer.anneal(p, machine, rng=i) for i, p in enumerate(packets)]


def _time_bag(annealer, packets, machine, repeats=1):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        _anneal_all(annealer, packets, machine)
        best = min(best, time.perf_counter() - t0)
    return best


@pytest.mark.benchmark(group="sa")
def test_sa_annealing_tiers_speedup(benchmark, save_artifact):
    machine = Machine.hypercube(3)
    packets = _packet_bag()
    reference = PacketAnnealer(SAConfig(seed=0, compiled=False))
    kernel = PacketAnnealer(SAConfig(seed=0, walk="kernel"))
    array = PacketAnnealer(SAConfig(seed=0))  # walk="array" default
    batched = PacketAnnealer(SAConfig(seed=0, replicas=N_REPLICAS))

    # Equivalence: all three single-chain tiers replay the same walk.
    ref_out = _anneal_all(reference, packets, machine)
    ker_out = _anneal_all(kernel, packets, machine)
    arr_out = _anneal_all(array, packets, machine)
    assert [o.assignment for o in ref_out] == [o.assignment for o in ker_out]
    assert [o.assignment for o in ref_out] == [o.assignment for o in arr_out]
    assert [o.best_cost for o in ref_out] == [o.best_cost for o in arr_out]
    assert [o.n_accepted for o in ref_out] == [o.n_accepted for o in arr_out]

    # Batched determinism: same seed + same B => same winners, bit for bit.
    bat_out = _anneal_all(batched, packets, machine)
    bat_out2 = _anneal_all(batched, packets, machine)
    assert [o.assignment for o in bat_out] == [o.assignment for o in bat_out2]
    assert [o.best_replica for o in bat_out] == [o.best_replica for o in bat_out2]
    # The winner achieves the minimum over its own replica set.  (The
    # replicas walk *child* streams, not the single chain's stream, so the
    # batched minimum is not comparable to the single-chain cost.)
    assert all(
        o.best_cost == min(s.best_cost for s in o.replica_stats) for o in bat_out
    )

    # Timed passes (the bags above doubled as warm-up).
    t_reference = _time_bag(reference, packets, machine)
    t_kernel = _time_bag(kernel, packets, machine)
    t_array = _time_bag(array, packets, machine, repeats=3)
    t_batched = _time_bag(batched, packets, machine, repeats=2)
    t_per_replica = t_batched / N_REPLICAS
    single_speedup = t_reference / t_array
    batched_speedup = t_reference / t_per_replica

    # End-to-end: SA over the 200-task dag200 sweep family, object engine vs
    # the fast engine driving SA through its index-space fast_assign.
    graph = GRAPH_FAMILIES["dag200"](0)
    t0 = time.perf_counter()
    slow = simulate(graph, machine, SAScheduler(SAConfig.paper_defaults(seed=0)),
                    comm_model=LinearCommModel(), record_trace=False, fast=False)
    t_e2e_object = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = simulate(graph, machine, SAScheduler(SAConfig.paper_defaults(seed=0)),
                    comm_model=LinearCommModel(), record_trace=False, fast=True)
    t_e2e_fast = time.perf_counter() - t0
    assert fast.fingerprint() == slow.fingerprint(), "SA fast path diverged"
    assert fast.n_fallback_epochs == 0, "SA fell back to the materialized context"

    payload = {
        "benchmark": "bench_sa",
        "scenario": {
            "bag": "30 packets: 20 x (15 ready, 4 idle) + 10 x (30 ready, 8 idle), "
                   "hypercube8, eq-4 comm",
            "batched": f"{N_REPLICAS} lock-stepped replicas per packet "
                       "(per-replica child RNG streams)",
            "e2e": "SA over dag200 (200 tasks), object engine vs fast engine",
        },
        "tiers_ms": {
            "reference": round(t_reference * 1e3, 1),
            "kernel": round(t_kernel * 1e3, 1),
            "array": round(t_array * 1e3, 1),
            "batched_total": round(t_batched * 1e3, 1),
            "batched_per_replica": round(t_per_replica * 1e3, 2),
        },
        "single_chain_speedup": round(single_speedup, 2),
        "array_vs_kernel": round(t_kernel / t_array, 2),
        "batched_per_replica_speedup": round(batched_speedup, 2),
        "n_replicas": N_REPLICAS,
        "e2e_dag200_ms": {
            "object": round(t_e2e_object * 1e3, 1),
            "fast": round(t_e2e_fast * 1e3, 1),
            "speedup": round(t_e2e_object / t_e2e_fast, 2),
            "fallback_epochs": fast.n_fallback_epochs,
        },
        "min_single_speedup_asserted": MIN_SINGLE_SPEEDUP,
        "min_batched_speedup_asserted": MIN_BATCHED_SPEEDUP,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=1) + "\n")

    lines = [
        "SA annealing benchmark: walk tiers + batched multi-replica engine",
        payload["scenario"]["bag"],
        "",
        f"{'tier':<22} {'time':>12} {'vs reference':>13}",
        f"{'reference':<22} {t_reference * 1e3:>10.1f}ms {'1.00x':>13}",
        f"{'kernel walk':<22} {t_kernel * 1e3:>10.1f}ms {t_reference / t_kernel:>12.2f}x",
        f"{'array walk':<22} {t_array * 1e3:>10.1f}ms {single_speedup:>12.2f}x",
        f"{'batched (per replica)':<22} {t_per_replica * 1e3:>10.2f}ms {batched_speedup:>12.2f}x",
        "",
        f"batched total: {t_batched * 1e3:.0f}ms for {N_REPLICAS} replicas x 30 packets",
        f"SA dag200 end-to-end: {payload['e2e_dag200_ms']['object']:.0f}ms object -> "
        f"{payload['e2e_dag200_ms']['fast']:.0f}ms fast "
        f"({payload['e2e_dag200_ms']['speedup']:.2f}x, "
        f"{fast.n_fallback_epochs} fallback epochs)",
    ]
    save_artifact("sa_speedup", "\n".join(lines))
    print("\n" + "\n".join(lines))

    assert single_speedup >= MIN_SINGLE_SPEEDUP, (
        f"array-walk speedup regressed: {single_speedup:.2f}x "
        f"(floor {MIN_SINGLE_SPEEDUP}x); see BENCH_sa.json"
    )
    assert batched_speedup >= MIN_BATCHED_SPEEDUP, (
        f"batched per-replica speedup regressed: {batched_speedup:.2f}x "
        f"(floor {MIN_BATCHED_SPEEDUP}x); see BENCH_sa.json"
    )

    # pytest-benchmark timing: the array-walk bag (one repetition).
    benchmark(lambda: _anneal_all(array, packets, machine))


@pytest.mark.benchmark(group="sa")
def test_sa_portfolio_quality(benchmark, save_artifact):
    """Anytime portfolio vs fixed-B multi-start at the matched draw budget."""
    machine = Machine.hypercube(3)
    families = ("dag200", "mapreduce-1k", "gridcat-1k")
    per_family = {}
    for family in families:
        graph = GRAPH_FAMILIES[family](0)
        measured = {}
        for label, scheduler in (
            ("fixed", SAScheduler(SAConfig.paper_defaults(seed=0)).with_replicas(
                PORTFOLIO_LANES
            )),
            ("portfolio", SAScheduler(
                SAConfig.paper_defaults(seed=0)
            ).with_portfolio(PORTFOLIO_LANES)),
        ):
            t0 = time.perf_counter()
            result = simulate(
                graph, machine, scheduler,
                comm_model=LinearCommModel(), record_trace=False,
            )
            elapsed = time.perf_counter() - t0
            snapshot = scheduler.best_so_far(include_assignment=False)
            measured[label] = {
                "makespan": result.makespan,
                "total_improvement": snapshot["total_improvement"],
                "n_packets": snapshot["n_packets"],
                "wall_ms": round(elapsed * 1e3, 1),
            }
        fixed = measured["fixed"]["total_improvement"]
        portfolio = measured["portfolio"]["total_improvement"]
        assert fixed > 0 and portfolio > 0, (
            f"{family}: degenerate run (improvements {fixed} / {portfolio})"
        )
        per_family[family] = {
            "quality": round(portfolio / fixed, 3),
            "fixed": measured["fixed"],
            "portfolio": measured["portfolio"],
        }

    quality_min = min(entry["quality"] for entry in per_family.values())

    # Fold the quality section into the baseline the speedup test wrote
    # (read-modify-write so test order / partial runs cannot lose keys).
    payload = json.loads(BENCH_JSON.read_text()) if BENCH_JSON.exists() else {
        "benchmark": "bench_sa"
    }
    payload["portfolio_quality"] = {
        family: entry["quality"] for family, entry in per_family.items()
    }
    payload["portfolio_quality_detail"] = per_family
    payload["portfolio_quality_min"] = quality_min
    payload["portfolio_lanes"] = PORTFOLIO_LANES
    payload["min_portfolio_quality_asserted"] = MIN_PORTFOLIO_QUALITY
    BENCH_JSON.write_text(json.dumps(payload, indent=1) + "\n")

    lines = [
        "SA anytime portfolio vs fixed-B multi-start "
        f"(matched budget, {PORTFOLIO_LANES} lanes vs {PORTFOLIO_LANES} replicas)",
        "quality = portfolio total cost improvement / fixed total cost improvement",
        "",
        f"{'family':<14} {'quality':>8} {'fixed impr':>11} {'portfolio impr':>15}",
    ]
    for family, entry in per_family.items():
        lines.append(
            f"{family:<14} {entry['quality']:>7.2f}x "
            f"{entry['fixed']['total_improvement']:>11.2f} "
            f"{entry['portfolio']['total_improvement']:>15.2f}"
        )
    lines.append("")
    lines.append(f"worst-family quality: {quality_min:.2f}x "
                 f"(floor {MIN_PORTFOLIO_QUALITY}x)")
    save_artifact("sa_portfolio_quality", "\n".join(lines))
    print("\n" + "\n".join(lines))

    assert quality_min >= MIN_PORTFOLIO_QUALITY, (
        f"portfolio quality regressed: {quality_min:.2f}x "
        f"(floor {MIN_PORTFOLIO_QUALITY}x); see BENCH_sa.json"
    )

    # pytest-benchmark timing: one portfolio-raced dag200 run.
    benchmark.pedantic(
        lambda: simulate(
            GRAPH_FAMILIES["dag200"](0), machine,
            SAScheduler(SAConfig.paper_defaults(seed=0)).with_portfolio(
                PORTFOLIO_LANES
            ),
            comm_model=LinearCommModel(), record_trace=False,
        ),
        rounds=1, iterations=1,
    )
