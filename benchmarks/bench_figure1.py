"""Benchmark: regenerate Figure 1 (per-packet cost trajectories).

The paper plots the level cost, communication cost and weighted total of one
Newton–Euler annealing packet on the 8-node hypercube (w_b = w_c = 0.5) and
observes that *both* component costs decrease during the packet's annealing.
This benchmark records the same trajectory, checks the descent property and
the §6a packet statistics, and saves the ASCII rendering.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure1 import format_figure1, run_figure1


@pytest.mark.benchmark(group="figure1")
def test_figure1_cost_trajectories(benchmark, save_artifact):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    traj = result.trajectory

    assert traj.n_points > 0
    b0, c0, t0 = traj.initial_costs()
    b1, c1, t1 = traj.final_costs()
    # the annealed packet never ends with a worse weighted cost ...
    assert t1 <= t0 + 1e-9
    # ... and the best total over the trajectory improves on the start
    assert min(traj.total_cost) <= t0
    # the level (balancing) cost decreases as more / higher tasks get selected
    assert min(traj.balance_cost) <= b0 + 1e-9

    # §6a narrative statistics: many small packets with ~1-2 free processors
    assert result.n_packets > 30
    assert result.average_candidates > 2
    assert 1.0 <= result.average_idle_processors <= 4.0

    text = format_figure1(result)
    save_artifact("figure1", text)
    print("\n" + text)
