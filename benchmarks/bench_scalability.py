"""Benchmark: scheduler runtime scaling.

The staged SA scheduler anneals one packet per assignment epoch; its runtime
therefore grows with the number of tasks and with the per-packet iteration
budget.  These benchmarks time the full scheduling + simulation pipeline for
increasing task-graph sizes and for the HLF baseline, giving a performance
reference point for the library (pytest-benchmark reports the timings).
"""

from __future__ import annotations

import pytest

from repro.comm.model import LinearCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import simulate
from repro.taskgraph.generators import layered_random


def _graph(n_layers: int, width: int):
    return layered_random(
        n_layers=n_layers, width=width, edge_probability=0.3,
        mean_duration=20.0, mean_comm=6.0, seed=7,
    )


@pytest.mark.benchmark(group="scalability-sa")
@pytest.mark.parametrize("n_layers,width", [(4, 5), (8, 8), (12, 10)])
def test_sa_scheduler_scaling(benchmark, n_layers, width):
    graph = _graph(n_layers, width)
    machine = Machine.hypercube(3)

    def run():
        return simulate(graph, machine, SAScheduler(SAConfig(seed=0)),
                        comm_model=LinearCommModel(), record_trace=False)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(result.task_processor) == graph.n_tasks


@pytest.mark.benchmark(group="scalability-hlf")
@pytest.mark.parametrize("n_layers,width", [(4, 5), (8, 8), (12, 10)])
def test_hlf_scheduler_scaling(benchmark, n_layers, width):
    graph = _graph(n_layers, width)
    machine = Machine.hypercube(3)

    def run():
        return simulate(graph, machine, HLFScheduler(),
                        comm_model=LinearCommModel(), record_trace=False)

    result = benchmark(run)
    assert len(result.task_processor) == graph.n_tasks
