"""Benchmark: regenerate Table 2 (SA vs HLF speedups).

Paper reference (Table 2), per program and architecture, without / with
communication:

* Without communication cost SA equals (or marginally beats) HLF.
* With communication cost SA outperforms HLF by 3.5 % – 52.8 %, with the
  largest gains on the communication-heavy Newton–Euler graph.

Absolute speedups depend on the exact task graphs (rebuilt from structure
here, see DESIGN.md) and on the simulator; the assertions below check the
paper's qualitative shape, not the absolute numbers.  The full regenerated
table is written to ``benchmarks/results/table2*.txt``.

The four programs are split into one benchmark each so the per-program cost
is visible in the pytest-benchmark report.
"""

from __future__ import annotations

import pytest

from repro.experiments.table2 import format_table2, paper_table2_reference, run_table2

ARCHITECTURES = ("Hypercube (8p)", "Bus (8p)", "Ring (9p)")


def _run_program(program: str):
    return run_table2(
        programs=[program],
        sa_weights=(0.3, 0.5, 0.7),
        hlf_placement_seeds=(0, 1, 2, 3),
    )


def _check_shape(block, program: str, min_cells_with_gain: int) -> None:
    """Assert the paper's qualitative claims for one program block."""
    n_with_gain = 0
    for arch in ARCHITECTURES:
        wo = block.cell(arch, with_communication=False)
        wi = block.cell(arch, with_communication=True)
        # (1) without communication SA matches HLF
        assert wo.speedup_sa == pytest.approx(wo.speedup_hlf, rel=0.03)
        # (2) communication does not raise the speedup (tiny tolerance: on the
        # nearly-flat MM graph the tuned with-comm schedule can edge out the
        # untuned without-comm one by a fraction of a percent)
        assert wi.speedup_sa <= wo.speedup_sa * 1.02
        assert wi.speedup_hlf <= wo.speedup_hlf * 1.02
        # (3) with communication SA does not lose to HLF (small tolerance)
        assert wi.speedup_sa >= wi.speedup_hlf * 0.97
        if wi.gain_percent > 1.0:
            n_with_gain += 1
        # the paper reference for this cell exists (sanity of the lookup table)
        assert len(paper_table2_reference(program, arch)) == 4
    assert n_with_gain >= min_cells_with_gain


@pytest.mark.benchmark(group="table2")
def test_table2_newton_euler(benchmark, save_artifact):
    blocks = benchmark.pedantic(_run_program, args=("NE",), rounds=1, iterations=1)
    # NE has the highest C/C ratio: SA must win clearly on all architectures
    _check_shape(blocks[0], "NE", min_cells_with_gain=3)
    text = format_table2(blocks)
    save_artifact("table2_newton_euler", text)
    print("\n" + text)


@pytest.mark.benchmark(group="table2")
def test_table2_gauss_jordan(benchmark, save_artifact):
    blocks = benchmark.pedantic(_run_program, args=("GJ",), rounds=1, iterations=1)
    _check_shape(blocks[0], "GJ", min_cells_with_gain=2)
    text = format_table2(blocks)
    save_artifact("table2_gauss_jordan", text)
    print("\n" + text)


@pytest.mark.benchmark(group="table2")
def test_table2_fft(benchmark, save_artifact):
    blocks = benchmark.pedantic(_run_program, args=("FFT",), rounds=1, iterations=1)
    _check_shape(blocks[0], "FFT", min_cells_with_gain=1)
    text = format_table2(blocks)
    save_artifact("table2_fft", text)
    print("\n" + text)


@pytest.mark.benchmark(group="table2")
def test_table2_matrix_multiply(benchmark, save_artifact):
    blocks = benchmark.pedantic(_run_program, args=("MM",), rounds=1, iterations=1)
    _check_shape(blocks[0], "MM", min_cells_with_gain=1)
    text = format_table2(blocks)
    save_artifact("table2_matrix_multiply", text)
    print("\n" + text)
