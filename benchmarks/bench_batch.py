"""Benchmark: the batched lane engine vs solo compiled fast-engine runs.

The benchmark builds a dag200 sweep — ``BENCH_BATCH_LANES`` lanes per policy
group (graph seeds x {hypercube8, ring9}) for each of {HLF, ETF, LPT} — and
times every group twice: once as individual :func:`run_compiled` calls (the
current fast engine) and once as a single lock-step :func:`run_lanes` batch.
Each lane's fingerprint must be **identical** between the two engines (the
batch engine's contract), and the aggregate speedup must clear the loose CI
floor (>= 2x on noisy shared runners; the committed baseline records the
local measurement, >= 5x at 512 lanes).

Measured numbers are persisted to ``BENCH_batch.json`` at the repository
root — gated by ``check_floors.py`` — and rendered to
``benchmarks/results/batch_speedup.txt``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from conftest import SWEEP_POLICIES
from repro.comm.model import LinearCommModel
from repro.machine.machine import Machine
from repro.sim.compile import compile_scenario
from repro.sim.fast_engine import run_compiled, run_lanes
from repro.taskgraph.generators import random_dag

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_batch.json"

#: Loose CI floor for the batched-sweep speedup (noisy shared runners);
#: local measurements at 512 lanes are recorded in BENCH_batch.json.
MIN_SPEEDUP = 2.0

#: Lanes per policy group.  CI may shrink this (the per-round amortization —
#: and so the speedup — grows with the lane count, which is why the floor is
#: loose); the committed baseline is measured at the default.
N_LANES = int(os.environ.get("BENCH_BATCH_LANES", "512"))

#: Timed passes per engine; the minimum is kept (loaded machines only ever
#: inflate a wall-clock measurement).
REPEATS = 2


def _sweep_lanes():
    """Compile the dag200 sweep cells: N_LANES (graph, machine) scenarios."""
    graphs = [
        random_dag(
            200, edge_probability=0.08, mean_duration=15.0, mean_comm=5.0, seed=s
        )
        for s in range((N_LANES + 1) // 2)
    ]
    machines = [Machine.hypercube(3), Machine.ring(9)]
    comm = LinearCommModel()
    scenarios = []
    for graph in graphs:
        levels = graph.levels()
        for machine in machines:
            scenarios.append(compile_scenario(graph, machine, comm, levels=levels))
    return scenarios[:N_LANES]


@pytest.mark.benchmark(group="batch")
def test_batch_sweep_speedup(benchmark, save_artifact):
    scenarios = _sweep_lanes()

    per_policy = {}
    total_solo = total_batch = 0.0
    for name, factory in SWEEP_POLICIES.items():
        solo_s = batch_s = float("inf")
        for _ in range(REPEATS):
            start = time.perf_counter()
            solo = [run_compiled(sc, factory()) for sc in scenarios]
            solo_s = min(solo_s, time.perf_counter() - start)
            lanes = [(sc, factory()) for sc in scenarios]
            start = time.perf_counter()
            batched = run_lanes(lanes)
            batch_s = min(batch_s, time.perf_counter() - start)
        # Equivalence proof: every lane bit-identical to its solo run.
        for lane_idx, (a, b) in enumerate(zip(solo, batched)):
            assert a.fingerprint() == b.fingerprint(), (
                f"{name} lane {lane_idx} diverged from its solo fast-engine run"
            )
        per_policy[name] = {
            "solo": round(solo_s * 1e3, 3),
            "batch": round(batch_s * 1e3, 3),
            "speedup": round(solo_s / batch_s, 2),
        }
        total_solo += solo_s
        total_batch += batch_s
    speedup = total_solo / total_batch

    payload = {
        "benchmark": "bench_batch",
        "scenario": (
            f"200-task random DAGs x {{hypercube8, ring9}}: {N_LANES} lanes "
            "per policy group x {HLF, ETF, LPT}, latency fidelity, eq-4 comm"
        ),
        "n_lanes": N_LANES,
        "per_policy_ms": per_policy,
        "sweep_speedup": round(speedup, 2),
        "min_speedup_asserted": MIN_SPEEDUP,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=1) + "\n")

    lines = [
        "Batch benchmark: lock-step lane engine vs solo fast-engine runs",
        payload["scenario"],
        "",
        f"{'policy':<8} {'solo':>10} {'batch':>10} {'speedup':>9}",
    ]
    for name, row in per_policy.items():
        lines.append(
            f"{name:<8} {row['solo']:>8.2f}ms {row['batch']:>8.2f}ms "
            f"{row['speedup']:>8.2f}x"
        )
    lines.append(
        f"{'total':<8} {total_solo * 1e3:>8.2f}ms {total_batch * 1e3:>8.2f}ms "
        f"{speedup:>8.2f}x"
    )
    save_artifact("batch_speedup", "\n".join(lines))
    print("\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"batched engine only {speedup:.2f}x faster than solo fast-engine "
        f"runs (floor {MIN_SPEEDUP}x); see BENCH_batch.json"
    )

    # pytest-benchmark timing: one batched pass over the ETF group.
    benchmark(lambda: run_lanes([(sc, SWEEP_POLICIES["ETF"]()) for sc in scenarios]))
