"""Benchmark: regenerate Table 1 (principal program characteristics).

Paper reference (Table 1):

    Program        Tasks  Avg.Dur  Avg.Comm  C/C %  Max speedup
    Newton-Euler      95     9.12      3.96   43.0         7.86
    Gauss-Jordan     111    84.77      6.85    8.1         9.14
    FFT               73    72.74      6.41    8.8        40.85
    Matrix Multiply  111    73.96      7.21    9.7        82.10

The benchmark measures the generation + characterization time and asserts the
calibration tolerances, then saves the measured-vs-paper table.
"""

from __future__ import annotations

import pytest

from repro.experiments.table1 import format_table1, run_table1


@pytest.mark.benchmark(group="table1")
def test_table1_characteristics(benchmark, save_artifact):
    rows = benchmark(run_table1)

    # Task counts are exact; durations / communication calibrated within 15 %.
    for row in rows:
        assert row.n_tasks == row.paper_n_tasks
        assert row.avg_duration == pytest.approx(row.paper_avg_duration, rel=0.15)
        assert row.avg_comm == pytest.approx(row.paper_avg_comm, rel=0.15)

    # The ordering of maximum speedups must match the paper: MM > FFT > GJ, NE.
    by_name = {r.program: r for r in rows}
    assert by_name["Matrix Multiply"].max_speedup > by_name["FFT"].max_speedup
    assert by_name["FFT"].max_speedup > by_name["Gauss-Jordan"].max_speedup
    assert by_name["FFT"].max_speedup > by_name["Newton-Euler"].max_speedup

    text = format_table1(rows)
    save_artifact("table1", text)
    print("\n" + text)
