"""Benchmark: regenerate Figure 2 (Gantt chart of Newton–Euler on the hypercube).

The paper shows a detail of the schedule start: per-processor task blocks
plus send / receive half-blocks and routing quarter-blocks.  The benchmark
runs the SA scheduler under the contention-aware simulator fidelity, renders
the text Gantt chart, verifies that the trace contains the communication
overhead records the figure depicts and that the schedule is valid.
"""

from __future__ import annotations

import pytest

from repro.experiments.figure2 import run_figure2


@pytest.mark.benchmark(group="figure2")
def test_figure2_gantt_chart(benchmark, save_artifact):
    fig = benchmark.pedantic(run_figure2, rounds=1, iterations=1)
    result = fig.result

    assert result.makespan > 0
    trace = result.trace
    trace.validate()
    # the figure's half/quarter blocks: send and routing overheads are recorded
    kinds = {o.kind for o in trace.overhead_records}
    assert "send" in kinds
    # on the hypercube some messages need more than one hop, hence routing blocks
    assert any(msg.n_hops > 1 for msg in trace.message_records)
    # every processor of the 8-node hypercube appears in the chart
    assert all(f"P{p}" in fig.chart for p in range(8))

    save_artifact("figure2_gantt", fig.chart)
    print("\n" + fig.chart)
