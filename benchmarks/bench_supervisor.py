"""Benchmark: supervised pool execution vs a plain in-process loop.

The supervisor (``src/repro/experiments/supervisor.py``) buys fault
tolerance — per-cell timeouts, retry, worker respawn, checkpointing — with
per-cell IPC over worker pipes.  This benchmark prices that machinery: the
same grid of sweep cells is run once as a plain serial loop over
:func:`run_scenario` and once through :func:`supervised_map` with the full
supervision feature set armed (subprocess workers, wall-clock deadlines,
retry budget).  The supervised throughput ratio (plain seconds / supervised
seconds) must clear a deliberately generous floor: with two workers the
supervised pass should beat the serial loop outright, and even with zero
parallel gain the supervision tax must never halve throughput.

Measured numbers are persisted to ``BENCH_supervisor.json`` at the
repository root — gated by ``check_floors.py`` — and rendered to
``benchmarks/results/supervisor_overhead.txt``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.supervisor import SupervisorConfig, supervised_map
from repro.experiments.sweep import build_grid, run_scenario

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_supervisor.json"

#: Generous CI floor: the supervised pool (2 workers, timeouts armed) must
#: deliver at least half the plain serial loop's throughput.  Locally it is
#: faster than serial (the committed baseline records the measurement).
MIN_RATIO = 0.5

#: Sweep cells per pass; CI may shrink this via the environment.
N_CELLS = int(os.environ.get("BENCH_SUPERVISOR_CELLS", "48"))

#: Timed passes per mode; the minimum is kept (loaded machines only ever
#: inflate a wall-clock measurement).
REPEATS = 2

_SCIENCE = ("policy", "machine", "graph_seed", "makespan", "speedup")


def _grid():
    n_seeds = max(1, (N_CELLS + 3) // 4)  # 2 policies x 2 machines per seed
    return build_grid(
        policies=("HLF", "ETF"),
        machines=("hypercube8", "ring9"),
        families=("dag200",),
        n_seeds=n_seeds,
    )[:N_CELLS]


@pytest.mark.benchmark(group="supervisor")
def test_supervised_throughput_ratio(benchmark, save_artifact):
    specs = _grid()
    config = SupervisorConfig(jobs=2, timeout=300.0, retries=2)

    plain_s = supervised_s = float("inf")
    plain_rows = supervised_rows = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        plain_rows = [run_scenario(dict(spec)) for spec in specs]
        plain_s = min(plain_s, time.perf_counter() - start)

        start = time.perf_counter()
        supervised_rows, stats = supervised_map(
            run_scenario, [dict(spec) for spec in specs], config
        )
        supervised_s = min(supervised_s, time.perf_counter() - start)

    # Equivalence proof: supervision changes scheduling, never numbers.
    for plain, supervised in zip(plain_rows, supervised_rows):
        for key in _SCIENCE:
            assert plain[key] == supervised[key], (
                f"supervised run diverged from the plain loop on {key}"
            )
    assert stats["mode"] == "pool" and stats["failed_items"] == 0

    ratio = plain_s / supervised_s
    payload = {
        "benchmark": "bench_supervisor",
        "scenario": (
            f"{len(specs)} dag200 cells x {{HLF, ETF}} x "
            "{hypercube8, ring9}: plain serial loop vs supervised pool "
            "(2 workers, 300s deadline armed, retries 2)"
        ),
        "n_cells": len(specs),
        "plain_ms": round(plain_s * 1e3, 3),
        "supervised_ms": round(supervised_s * 1e3, 3),
        "supervised_throughput_ratio": round(ratio, 2),
        "min_ratio_asserted": MIN_RATIO,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=1) + "\n")

    lines = [
        "Supervisor benchmark: supervised pool vs plain serial loop",
        payload["scenario"],
        "",
        f"plain loop      {plain_s * 1e3:>10.2f}ms",
        f"supervised pool {supervised_s * 1e3:>10.2f}ms",
        f"throughput ratio {ratio:>8.2f}x (floor {MIN_RATIO}x)",
    ]
    save_artifact("supervisor_overhead", "\n".join(lines))
    print("\n".join(lines))

    assert ratio >= MIN_RATIO, (
        f"supervised pool delivers only {ratio:.2f}x the plain loop's "
        f"throughput (floor {MIN_RATIO}x); see BENCH_supervisor.json"
    )

    # pytest-benchmark timing: one supervised pass over the grid.
    benchmark(
        lambda: supervised_map(
            run_scenario, [dict(spec) for spec in specs], config
        )
    )
