"""The benchmark-regression gate: measured speedups must stay above floor.

Every performance benchmark persists its measured numbers to a
``BENCH_*.json`` baseline at the repository root, together with the floor it
asserted (the ``min_*_asserted`` keys).  This script reads the *measured*
speedups from ``--root`` and the *floors* from ``--floors-root`` and fails —
exit status 1, one line per violation — when any speedup is below its floor.
It is the shared gate between local runs and CI:

* locally, run the benchmarks and then the gate (floors and values both
  from the working tree)::

      python -m pytest benchmarks/bench_engine.py benchmarks/bench_sa.py \
          benchmarks/bench_fidelity.py --benchmark-disable -q
      python benchmarks/check_floors.py

* in CI, the ``bench-gate`` job stashes the **committed** baselines first,
  reruns the benchmarks (which rewrite the files in place) and then gates
  the fresh measurements against the committed floors::

      cp BENCH_*.json /tmp/committed-baselines/
      python -m pytest benchmarks/bench_*.py --benchmark-disable -q
      python benchmarks/check_floors.py --floors-root /tmp/committed-baselines

  so a change that slows a compiled engine below the floor of record fails
  the build even if the benchmark's own in-test assertion (and the floor it
  writes into the refreshed JSON) was edited in the same commit.

``--baseline-only`` skips missing files silently (useful for partial local
runs); by default every registered baseline must exist.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Tuple

REPO_ROOT = Path(__file__).parent.parent

#: baseline file -> [(speedup key path, floor key)].  A key path may use
#: dots to descend into nested objects (e.g. ``e2e_dag200_ms.speedup``).
FLOOR_CHECKS = {
    "BENCH_engine.json": [
        ("sweep_speedup", "min_speedup_asserted"),
    ],
    "BENCH_sa.json": [
        ("single_chain_speedup", "min_single_speedup_asserted"),
        ("batched_per_replica_speedup", "min_batched_speedup_asserted"),
        ("portfolio_quality_min", "min_portfolio_quality_asserted"),
    ],
    "BENCH_fidelity.json": [
        ("contention_sweep_speedup", "min_speedup_asserted"),
    ],
    "BENCH_batch.json": [
        ("sweep_speedup", "min_speedup_asserted"),
    ],
    "BENCH_families.json": [
        ("batched_sweep_speedup", "min_speedup_asserted"),
    ],
    "BENCH_supervisor.json": [
        ("supervised_throughput_ratio", "min_ratio_asserted"),
    ],
    "BENCH_service.json": [
        ("service_speedup", "min_speedup_asserted"),
    ],
}


def _lookup(payload: dict, dotted: str):
    value = payload
    for part in dotted.split("."):
        if not isinstance(value, dict) or part not in value:
            return None
        value = value[part]
    return value


def _load(path: Path):
    try:
        return json.loads(path.read_text()), None
    except (OSError, ValueError) as exc:
        return None, f"{path.name}: unreadable baseline ({exc})"


def check_file(
    path: Path, floors_path: Path, checks: List[Tuple[str, str]]
) -> List[str]:
    """Return the violation messages for one baseline file (empty = pass).

    Measured values come from *path*, floors from *floors_path* (the same
    file unless CI stashed the committed copy).
    """
    payload, err = _load(path)
    if err:
        return [err]
    floors_payload = payload
    if floors_path != path:
        floors_payload, err = _load(floors_path)
        if err:
            return [err]
    problems = []
    for value_key, floor_key in checks:
        value = _lookup(payload, value_key)
        floor = _lookup(floors_payload, floor_key)
        if value is None or floor is None:
            problems.append(
                f"{path.name}: missing {value_key!r} or {floor_key!r} "
                f"(got {value!r} / {floor!r})"
            )
        elif float(value) < float(floor):
            problems.append(
                f"{path.name}: {value_key} = {value}x is below the "
                f"{floor}x floor ({floor_key})"
            )
        else:
            print(f"ok: {path.name}: {value_key} = {value}x >= {floor}x floor")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument(
        "--root", type=Path, default=REPO_ROOT,
        help="directory holding the measured BENCH_*.json files (default: repo root)",
    )
    parser.add_argument(
        "--floors-root", type=Path, default=None,
        help=(
            "directory holding the baselines whose min_*_asserted floors are "
            "enforced (default: --root; CI points this at a stash of the "
            "committed files so edited floors cannot gate themselves)"
        ),
    )
    parser.add_argument(
        "--baseline-only", action="store_true",
        help="skip missing baseline files instead of failing on them",
    )
    args = parser.parse_args(argv)
    floors_root = args.floors_root if args.floors_root is not None else args.root

    problems: List[str] = []
    checked = 0
    for name, checks in FLOOR_CHECKS.items():
        path = args.root / name
        if not path.exists():
            if args.baseline_only:
                print(f"skip: {name} (not present)")
                continue
            problems.append(f"{name}: baseline missing (run its benchmark first)")
            continue
        checked += 1
        problems.extend(check_file(path, floors_root / name, checks))

    if problems:
        for line in problems:
            print(f"FAIL: {line}", file=sys.stderr)
        return 1
    print(f"benchmark floors hold ({checked} baseline file(s) checked)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
