"""Benchmark: list schedulers vs SA on random task graphs (paper §6b remark).

The paper cites the classical result that HLF stays within 5 % of optimal on
almost all random task graphs *when communication is free*, and observes that
SA's advantage appears once interprocessor communication is charged.  This
benchmark compares HLF, communication-aware HLF, ETF and SA over a batch of
random layered DAGs, without and with communication, and checks:

* without communication HLF and SA are statistically indistinguishable,
* with communication SA's mean speedup is at least as good as plain HLF's.

A second benchmark drives the same comparison through the parallel sweep
runner (:mod:`repro.experiments.sweep`) over a larger scenario grid.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.model import LinearCommModel, ZeroCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.experiments.sweep import format_sweep_report, run_sweep
from repro.machine.machine import Machine
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import simulate
from repro.taskgraph.generators import layered_random
from repro.utils.tabulate import format_table

N_GRAPHS = 8


def _policies():
    return {
        "HLF": lambda: HLFScheduler(seed=0),
        "HLF/min-comm": lambda: HLFScheduler(placement="min_comm"),
        "ETF": lambda: ETFScheduler(),
        "SA": lambda: SAScheduler(SAConfig(seed=0)),
    }


def _run_batch(with_communication: bool):
    machine = Machine.hypercube(3)
    comm = LinearCommModel() if with_communication else ZeroCommModel()
    speedups = {name: [] for name in _policies()}
    for i in range(N_GRAPHS):
        graph = layered_random(
            n_layers=6, width=8, edge_probability=0.4,
            mean_duration=20.0, mean_comm=8.0, seed=100 + i,
        )
        for name, factory in _policies().items():
            result = simulate(graph, machine, factory(), comm_model=comm, record_trace=False)
            speedups[name].append(result.speedup())
    return {name: (float(np.mean(v)), float(np.std(v))) for name, v in speedups.items()}


@pytest.mark.benchmark(group="random-graphs")
def test_random_graph_comparison(benchmark, save_artifact):
    def run_both():
        return _run_batch(False), _run_batch(True)

    without, with_comm = benchmark.pedantic(run_both, rounds=1, iterations=1)

    # without communication, level-based scheduling is what matters: SA ~ HLF
    assert with_comm["SA"][0] >= with_comm["HLF"][0] * 0.97
    assert abs(without["SA"][0] - without["HLF"][0]) / without["HLF"][0] < 0.05

    rows = [
        [name, without[name][0], without[name][1], with_comm[name][0], with_comm[name][1]]
        for name in without
    ]
    text = format_table(
        rows,
        headers=["Policy", "Sp w/o comm", "std", "Sp with comm", "std"],
        title=f"Random layered DAGs (n={N_GRAPHS}) on the 8-node hypercube",
    )
    save_artifact("random_graphs", text)
    print("\n" + text)


@pytest.mark.benchmark(group="random-graphs")
def test_random_graph_sweep(benchmark, save_artifact):
    """A larger grid (2 machines × 2 families × 8 seeds × 3 policies) via the sweep runner."""

    def run():
        return run_sweep(
            policies=("HLF", "ETF", "SA"),
            machines=("hypercube8", "ring9"),
            families=("layered", "dag"),
            n_seeds=8,
            jobs=2,
        )

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report["meta"]["n_simulations"] == 3 * 2 * 2 * 8
    assert report["meta"]["n_failed"] == 0

    by_cell = {
        (a["policy"], a["machine"], a["family"]): a["mean_speedup"]
        for a in report["aggregates"]
    }
    # With communication charged, SA should at least match plain HLF everywhere.
    for machine in ("hypercube8", "ring9"):
        for family in ("layered", "dag"):
            assert by_cell[("SA", machine, family)] >= by_cell[("HLF", machine, family)] * 0.97

    text = format_sweep_report(report)
    save_artifact("random_graph_sweep", text)
    print("\n" + text)
