"""Benchmark: the scheduling service vs one-process-per-request.

The service (``src/repro/service/``) keeps its pool workers **persistent**
so compiled scenarios stay cached across requests, shards jobs to workers
by (graph, machine) affinity, and coalesces compatible concurrent jobs into
single batched B-lane engine calls.  This load generator prices all three
against the naive server model it replaces: fork a fresh process per
request (cold caches, full interpreter + import tax each time) with the
same worker concurrency.

The driver queues ``BENCH_SERVICE_JOBS`` requests (10k+ by default) over
one pipelined connection, recording per-job submit→response latency.  Two
baselines run on subsamples (starting 10k processes would take minutes to
prove what a few dozen prove already):

* **naive** — one fresh ``python -c`` subprocess per request: interpreter
  boot, imports, and cold compile every time.  This is the model the
  gated **3x floor** compares against; locally the measured ratio is far
  higher.
* **preforked** — the supervised pool with ``maxtasksperchild=1``: fork
  per request from a warm parent (no import tax), the strongest
  process-per-request server one could build from this repo's own
  machinery.  Reported for scale, not gated.

Measured numbers are persisted to ``BENCH_service.json`` at the repository
root — gated by ``check_floors.py`` and the CI bench-gate job — and
rendered to ``benchmarks/results/service_throughput.txt``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments.supervisor import SupervisorConfig, supervised_map
from repro.experiments.sweep import run_scenario
from repro.service import ServiceClient, ServiceConfig, serve_in_thread
from repro.service.protocol import encode_message

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_service.json"

#: CI floor: the warm coalescing service must deliver at least 3x the
#: jobs/sec of the one-process-per-request baseline at equal concurrency.
MIN_SPEEDUP = 3.0

#: Requests queued against the service; CI may shrink via the environment.
N_JOBS = int(os.environ.get("BENCH_SERVICE_JOBS", "10000"))

#: Naive-baseline sample size (each job boots a Python interpreter).
N_NAIVE = int(os.environ.get("BENCH_SERVICE_NAIVE_JOBS", "16"))

#: Preforked-baseline sample size (each job forks from the warm parent).
N_PREFORKED = int(os.environ.get("BENCH_SERVICE_PREFORKED_JOBS", "96"))

#: Worker concurrency on both sides of the comparison.
WORKERS = 2

#: What a naive server runs per request: import the stack, read one job
#: from stdin, simulate, write the row to stdout.
_NAIVE_WORKER = (
    "import json, sys\n"
    "from repro.experiments.sweep import run_scenario\n"
    "json.dump(run_scenario(json.load(sys.stdin)), sys.stdout)\n"
)


def _job_mix(n: int):
    """A request stream with realistic repetition: a bounded scenario pool.

    Rotates policies (SA included — annealing jobs are the coalescer's
    main win), machines and graph seeds over small graph families, with
    policy seeds cycling so repeated (graph, machine) pairs exercise the
    affinity shards' warm caches the way a real client population would.
    """
    policies = ("HLF", "ETF", "SA")
    machines = ("hypercube8", "ring9")
    families = ("grid", "layered")
    jobs = []
    for i in range(n):
        jobs.append(
            {
                "policy": policies[i % len(policies)],
                "machine": machines[(i // 3) % len(machines)],
                "family": families[(i // 6) % len(families)],
                "graph_seed": (i // 12) % 4,
                "policy_seed": i % 7,
                "with_comm": True,
                "fidelity": "latency",
            }
        )
    return jobs


def _drive(host: str, port: int, jobs) -> dict:
    """Queue every job over one pipelined connection; measure per-job latency.

    A writer thread streams requests while this thread reads responses, so
    the socket cannot deadlock; latency is submit-time → response-time per
    request id.
    """
    client = ServiceClient(host, port, timeout=600.0)
    client.connect()
    send_at = {}
    requests = []
    for i, job in enumerate(jobs, start=1):
        requests.append((i, encode_message({"id": i, "op": "simulate", "job": job})))

    def _stream():
        for request_id, line in requests:
            send_at[request_id] = time.perf_counter()
            client._sock.sendall(line)

    start = time.perf_counter()
    writer = threading.Thread(target=_stream, daemon=True)
    writer.start()
    latencies = []
    n_ok = 0
    for _ in range(len(requests)):
        response = client._recv()
        now = time.perf_counter()
        latencies.append(now - send_at[response["id"]])
        n_ok += bool(response.get("ok"))
    wall_s = time.perf_counter() - start
    writer.join(timeout=60.0)
    stats = client.stats()
    client.close()
    assert n_ok == len(jobs), f"{len(jobs) - n_ok} service jobs failed"
    latencies.sort()
    return {
        "wall_s": wall_s,
        "jobs_per_sec": len(jobs) / wall_s,
        "p50_ms": latencies[len(latencies) // 2] * 1e3,
        "p99_ms": latencies[min(len(latencies) - 1, (len(latencies) * 99) // 100)]
        * 1e3,
        "stats": stats,
    }


def _specs(jobs):
    return [
        {k: v for k, v in job.items()} | {"fast": None, "replicas": None}
        for job in jobs
    ]


def _naive_jobs_per_sec(jobs) -> float:
    """One fresh Python subprocess per request, ``WORKERS`` at a time.

    Interpreter boot + imports + cold scenario compile per job: what a
    server that starts a process per request actually costs.
    """
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    pending = _specs(jobs)
    active = []
    start = time.perf_counter()
    n_done = 0
    while n_done < len(jobs):
        while len(active) < WORKERS and pending:
            proc = subprocess.Popen(
                [sys.executable, "-c", _NAIVE_WORKER],
                stdin=subprocess.PIPE,
                stdout=subprocess.PIPE,
                text=True,
                env=env,
            )
            proc.stdin.write(json.dumps(pending.pop(0)))
            proc.stdin.close()
            active.append(proc)
        proc = active.pop(0)
        row = json.loads(proc.stdout.read())
        assert proc.wait() == 0 and row.get("error") is None
        n_done += 1
    return len(jobs) / (time.perf_counter() - start)


def _preforked_jobs_per_sec(jobs) -> float:
    """The strongest process-per-request rival: fork from a warm parent.

    ``maxtasksperchild=1`` makes the supervised pool fork a fresh worker
    per job — inheriting the parent's imports copy-on-write, paying only
    the fork and the cold compile — at the service's concurrency.
    """
    config = SupervisorConfig(jobs=WORKERS, maxtasksperchild=1, retries=2)
    start = time.perf_counter()
    rows, stats = supervised_map(run_scenario, _specs(jobs), config)
    wall_s = time.perf_counter() - start
    assert stats["failed_items"] == 0
    assert all(row.get("error") is None for row in rows)
    return len(jobs) / wall_s


@pytest.mark.benchmark(group="service")
def test_service_throughput_vs_fork_per_request(benchmark, save_artifact):
    jobs = _job_mix(N_JOBS)
    config = ServiceConfig(workers=WORKERS, batch=32, window_ms=2.0)

    with serve_in_thread(config) as (host, port):
        # Warm pass: fill the per-worker scenario memos the way a live
        # service's steady state would have them.
        _drive(host, port, _job_mix(min(N_JOBS, 256)))
        measured = _drive(host, port, jobs)

    naive_jps = _naive_jobs_per_sec(jobs[:N_NAIVE])
    preforked_jps = _preforked_jobs_per_sec(jobs[:N_PREFORKED])
    speedup = measured["jobs_per_sec"] / naive_jps
    preforked_speedup = measured["jobs_per_sec"] / preforked_jps

    stats = measured["stats"]
    payload = {
        "benchmark": "bench_service",
        "scenario": (
            f"{N_JOBS} pipelined jobs (HLF/ETF/SA x hypercube8/ring9 x "
            f"grid/layered) against a warm {WORKERS}-worker coalescing "
            f"service (batch 32, 2ms window) vs one-process-per-request "
            f"at equal concurrency ({N_NAIVE}-job naive sample, "
            f"{N_PREFORKED}-job preforked sample)"
        ),
        "n_jobs": N_JOBS,
        "service_wall_s": round(measured["wall_s"], 3),
        "service_jobs_per_sec": round(measured["jobs_per_sec"], 1),
        "latency_p50_ms": round(measured["p50_ms"], 3),
        "latency_p99_ms": round(measured["p99_ms"], 3),
        "naive_n_jobs": N_NAIVE,
        "naive_jobs_per_sec": round(naive_jps, 2),
        "preforked_n_jobs": N_PREFORKED,
        "preforked_jobs_per_sec": round(preforked_jps, 1),
        "preforked_speedup": round(preforked_speedup, 2),
        "service_speedup": round(speedup, 2),
        "min_speedup_asserted": MIN_SPEEDUP,
        "coalescing": stats["coalescing"],
        "affinity": {
            "hits": stats["affinity"]["hits"],
            "misses": stats["affinity"]["misses"],
            "hit_rate": round(stats["affinity"]["hit_rate"], 4),
        },
        "compile_cache": stats["compile_cache"],
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=1) + "\n")

    lines = [
        "Service benchmark: coalescing warm-cache server vs process-per-request",
        payload["scenario"],
        "",
        f"service      {measured['jobs_per_sec']:>10.1f} jobs/s  "
        f"(p50 {measured['p50_ms']:.2f}ms, p99 {measured['p99_ms']:.2f}ms)",
        f"naive        {naive_jps:>10.2f} jobs/s (subprocess per request)",
        f"preforked    {preforked_jps:>10.1f} jobs/s (warm fork per request)",
        f"speedup      {speedup:>10.2f}x vs naive (floor {MIN_SPEEDUP}x), "
        f"{preforked_speedup:.2f}x vs preforked",
        f"coalescing   mean batch {stats['coalescing']['mean_batch']:.2f}, "
        f"max {stats['coalescing']['max_batch']}, "
        f"{stats['coalescing']['coalesced_jobs']} jobs coalesced",
        f"affinity     hit rate {stats['affinity']['hit_rate']:.3f}",
        f"cache        {stats['compile_cache']['hits']} hits / "
        f"{stats['compile_cache']['misses']} misses / "
        f"{stats['compile_cache']['evictions']} evictions",
    ]
    save_artifact("service_throughput", "\n".join(lines))
    print("\n".join(lines))

    # The design's three claims, asserted from the measured counters.
    assert stats["coalescing"]["coalesced_jobs"] > 0, "no jobs were coalesced"
    assert stats["coalescing"]["max_batch"] > 1, "no batched lane group formed"
    assert stats["affinity"]["hit_rate"] > 0.5, (
        "affinity routing failed to keep repeat scenarios on warm workers"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"service delivers only {speedup:.2f}x the one-process-per-request "
        f"baseline's throughput (floor {MIN_SPEEDUP}x); see BENCH_service.json"
    )

    # pytest-benchmark timing: one short pipelined burst against a fresh
    # (but warm) service, so `--benchmark-enable` runs stay bounded.
    with serve_in_thread(config) as (host, port):
        _drive(host, port, _job_mix(64))
        benchmark(lambda: _drive(host, port, _job_mix(64)))
