"""Benchmark: the compiled fast engine vs the reference object engine.

The end-to-end benchmark times the 200-task random-graph list-scheduler
sweep (HLF, ETF, LPT over three graph seeds on the hypercube and ring
machines) through both engines, asserts the results are **identical** (the
fast engine's contract) and the speedup is at least the loose CI floor
(≥ 2×; typical measurements are 4–6×).  A kernel micro-benchmark times one
ETF assignment epoch through the object path and the index-space kernel.

Measured numbers are persisted to ``BENCH_engine.json`` at the repository
root — the performance trajectory future engine changes regress against —
and rendered to ``benchmarks/results/engine_speedup.txt``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from conftest import (
    SWEEP_SCENARIO,
    per_policy_payload,
    render_policy_table,
    sweep_graphs,
    time_policy_sweep,
)
from repro.comm.model import LinearCommModel
from repro.machine.machine import Machine
from repro.schedulers.base import PacketContext
from repro.schedulers.etf import ETFScheduler
from repro.sim.compile import FastPacket, compile_scenario
from repro.taskgraph.generators import layered_random

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: Loose CI floor for the end-to-end sweep speedup (noisy shared runners);
#: local measurements are recorded in BENCH_engine.json.
MIN_SPEEDUP = 2.0


def _etf_epoch_fixture():
    """One communication-heavy ETF epoch, as context and as packet.

    Layer 0 of a two-layer graph is placed and finished; all of layer 1 is
    ready on a machine with three busy processors.
    """
    graph = layered_random(
        n_layers=2, width=60, edge_probability=0.3,
        mean_duration=20.0, mean_comm=8.0, seed=7,
    )
    machine = Machine.hypercube(3)
    comm = LinearCommModel()
    levels = graph.levels()
    scenario = compile_scenario(graph, machine, comm, levels=levels)
    layer0 = [t for t in graph.tasks if graph.in_degree(t) == 0]
    ready_ids = [t for t in graph.tasks if t not in set(layer0)]
    placed = {t: i % machine.n_processors for i, t in enumerate(layer0)}
    finish = {t: 10.0 + 0.5 * i for i, t in enumerate(layer0)}
    idle = list(range(machine.n_processors - 3))
    ctx = PacketContext(
        time=40.0,
        ready_tasks=ready_ids,
        idle_processors=idle,
        graph=graph,
        machine=machine,
        levels=levels,
        task_processor=placed,
        finish_times=finish,
        comm_model=comm,
    )
    assigned = np.full(scenario.n_tasks, -1, dtype=np.intp)
    fins = np.zeros(scenario.n_tasks, dtype=np.float64)
    for t, p in placed.items():
        assigned[scenario.index_of[t]] = p
        fins[scenario.index_of[t]] = finish[t]
    packet = FastPacket(
        time=40.0,
        ready=[scenario.index_of[t] for t in ready_ids],
        idle=idle,
        scenario=scenario,
        assigned_proc=assigned,
        finish_times=fins,
        proc_ready_time=np.zeros(machine.n_processors),
    )
    return scenario, ctx, packet


def _time_epoch(fn, repeats=50):
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


@pytest.mark.benchmark(group="engine")
def test_engine_sweep_speedup(benchmark, save_artifact):
    machines = [Machine.hypercube(3), Machine.ring(9)]
    graphs = sweep_graphs()

    # Warm-up + equivalence proof: identical numbers from both engines.
    object_s, object_results = time_policy_sweep(graphs, machines, fast=False, repeats=1)
    fast_s, fast_results = time_policy_sweep(graphs, machines, fast=None, repeats=1)
    assert object_results == fast_results, "fast engine diverged from the reference"

    # Timed passes.
    object_s, _ = time_policy_sweep(graphs, machines, fast=False)
    fast_s, _ = time_policy_sweep(graphs, machines, fast=None)
    speedup = sum(object_s.values()) / sum(fast_s.values())

    # Kernel micro-benchmark: one ETF epoch, object path vs index kernel.
    scenario, ctx, packet = _etf_epoch_fixture()
    etf = ETFScheduler()
    etf.reset()
    object_assignment = etf.assign(ctx)
    etf.reset()
    fast_assignment = etf.fast_assign(packet)
    assert object_assignment == {
        scenario.task_ids[t]: p for t, p in fast_assignment.items()
    }, "ETF kernel diverged from the object path"
    epoch_object_s = _time_epoch(lambda: etf.assign(ctx))
    def _fresh_fast():
        etf.reset()  # epoch cache off, measure the cold kernel
        etf.fast_assign(packet)
    epoch_fast_s = _time_epoch(_fresh_fast)

    payload = {
        "benchmark": "bench_engine",
        "scenario": {
            "sweep": SWEEP_SCENARIO % "latency",
            "kernel": "one ETF epoch: 60 ready tasks x 5 idle processors, "
                      "layer-0 predecessors placed",
        },
        "per_policy_ms": per_policy_payload(object_s, fast_s),
        "sweep_speedup": round(speedup, 2),
        "etf_epoch_us": {
            "object": round(epoch_object_s * 1e6, 1),
            "fast": round(epoch_fast_s * 1e6, 1),
            "speedup": round(epoch_object_s / epoch_fast_s, 2),
        },
        "min_speedup_asserted": MIN_SPEEDUP,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=1) + "\n")

    lines = render_policy_table(
        "Engine benchmark: compiled fast engine vs reference object engine",
        payload["scenario"]["sweep"],
        payload["per_policy_ms"],
        payload["sweep_speedup"],
    )
    lines += [
        "",
        f"ETF epoch kernel: {payload['etf_epoch_us']['object']:.0f}us -> "
        f"{payload['etf_epoch_us']['fast']:.0f}us "
        f"({payload['etf_epoch_us']['speedup']:.2f}x)",
    ]
    save_artifact("engine_speedup", "\n".join(lines))
    print("\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"fast engine only {speedup:.2f}x faster than the object engine "
        f"(floor {MIN_SPEEDUP}x); see BENCH_engine.json"
    )

    # pytest-benchmark timing: the fast-engine sweep core (one repetition).
    benchmark(lambda: time_policy_sweep(graphs, machines, fast=None, repeats=1))
