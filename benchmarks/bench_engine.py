"""Benchmark: the compiled fast engine vs the reference object engine.

The end-to-end benchmark times the 200-task random-graph list-scheduler
sweep (HLF, ETF, LPT over three graph seeds on the hypercube and ring
machines) through both engines, asserts the results are **identical** (the
fast engine's contract) and the speedup is at least the loose CI floor
(≥ 2×; typical measurements are 4–6×).  A kernel micro-benchmark times one
ETF assignment epoch through the object path and the index-space kernel.

Measured numbers are persisted to ``BENCH_engine.json`` at the repository
root — the performance trajectory future engine changes regress against —
and rendered to ``benchmarks/results/engine_speedup.txt``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np
import pytest

from repro.comm.model import LinearCommModel
from repro.machine.machine import Machine
from repro.schedulers.base import PacketContext
from repro.schedulers.etf import ETFScheduler
from repro.schedulers.hlf import HLFScheduler
from repro.schedulers.lpt import LPTScheduler
from repro.sim.compile import FastPacket, compile_scenario
from repro.sim.engine import simulate
from repro.taskgraph.generators import layered_random, random_dag

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_engine.json"

#: Loose CI floor for the end-to-end sweep speedup (noisy shared runners);
#: local measurements are recorded in BENCH_engine.json.
MIN_SPEEDUP = 2.0

_POLICIES = {
    "HLF": lambda: HLFScheduler(seed=0),
    "ETF": lambda: ETFScheduler(),
    "LPT": lambda: LPTScheduler(),
}


def _sweep_graphs():
    return [
        random_dag(200, edge_probability=0.08, mean_duration=15.0, mean_comm=5.0, seed=s)
        for s in range(3)
    ]


def _time_sweep(graphs, machines, fast, repeats: int = 2):
    """Wall-clock one engine over the whole (policy × machine × graph) sweep."""
    per_policy = {}
    results = {}
    for name, factory in _POLICIES.items():
        start = time.perf_counter()
        for _ in range(repeats):
            for mi, machine in enumerate(machines):
                for gi, graph in enumerate(graphs):
                    result = simulate(
                        graph, machine, factory(), comm_model=LinearCommModel(),
                        record_trace=False, fast=fast,
                    )
                    results[(name, mi, gi)] = (result.makespan, result.n_packets)
        n_runs = repeats * len(machines) * len(graphs)
        per_policy[name] = (time.perf_counter() - start) / n_runs
    return per_policy, results


def _etf_epoch_fixture():
    """One communication-heavy ETF epoch, as context and as packet.

    Layer 0 of a two-layer graph is placed and finished; all of layer 1 is
    ready on a machine with three busy processors.
    """
    graph = layered_random(
        n_layers=2, width=60, edge_probability=0.3,
        mean_duration=20.0, mean_comm=8.0, seed=7,
    )
    machine = Machine.hypercube(3)
    comm = LinearCommModel()
    levels = graph.levels()
    scenario = compile_scenario(graph, machine, comm, levels=levels)
    layer0 = [t for t in graph.tasks if graph.in_degree(t) == 0]
    ready_ids = [t for t in graph.tasks if t not in set(layer0)]
    placed = {t: i % machine.n_processors for i, t in enumerate(layer0)}
    finish = {t: 10.0 + 0.5 * i for i, t in enumerate(layer0)}
    idle = list(range(machine.n_processors - 3))
    ctx = PacketContext(
        time=40.0,
        ready_tasks=ready_ids,
        idle_processors=idle,
        graph=graph,
        machine=machine,
        levels=levels,
        task_processor=placed,
        finish_times=finish,
        comm_model=comm,
    )
    assigned = np.full(scenario.n_tasks, -1, dtype=np.intp)
    fins = np.zeros(scenario.n_tasks, dtype=np.float64)
    for t, p in placed.items():
        assigned[scenario.index_of[t]] = p
        fins[scenario.index_of[t]] = finish[t]
    packet = FastPacket(
        time=40.0,
        ready=[scenario.index_of[t] for t in ready_ids],
        idle=idle,
        scenario=scenario,
        assigned_proc=assigned,
        finish_times=fins,
        proc_ready_time=np.zeros(machine.n_processors),
    )
    return scenario, ctx, packet


def _time_epoch(fn, repeats=50):
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats


@pytest.mark.benchmark(group="engine")
def test_engine_sweep_speedup(benchmark, save_artifact):
    machines = [Machine.hypercube(3), Machine.ring(9)]
    graphs = _sweep_graphs()

    # Warm-up + equivalence proof: identical numbers from both engines.
    object_ms, object_results = _time_sweep(graphs, machines, fast=False, repeats=1)
    fast_ms, fast_results = _time_sweep(graphs, machines, fast=None, repeats=1)
    assert object_results == fast_results, "fast engine diverged from the reference"

    # Timed passes.
    object_ms, _ = _time_sweep(graphs, machines, fast=False)
    fast_ms, _ = _time_sweep(graphs, machines, fast=None)
    total_object = sum(object_ms.values())
    total_fast = sum(fast_ms.values())
    speedup = total_object / total_fast

    # Kernel micro-benchmark: one ETF epoch, object path vs index kernel.
    scenario, ctx, packet = _etf_epoch_fixture()
    etf = ETFScheduler()
    etf.reset()
    object_assignment = etf.assign(ctx)
    etf.reset()
    fast_assignment = etf.fast_assign(packet)
    assert object_assignment == {
        scenario.task_ids[t]: p for t, p in fast_assignment.items()
    }, "ETF kernel diverged from the object path"
    epoch_object_s = _time_epoch(lambda: etf.assign(ctx))
    def _fresh_fast():
        etf.reset()  # epoch cache off, measure the cold kernel
        etf.fast_assign(packet)
    epoch_fast_s = _time_epoch(_fresh_fast)

    payload = {
        "benchmark": "bench_engine",
        "scenario": {
            "sweep": "200-task random DAGs (3 seeds) x {HLF, ETF, LPT} x "
                     "{hypercube8, ring9}, latency fidelity, eq-4 comm",
            "kernel": "one ETF epoch: 60 ready tasks x 5 idle processors, "
                      "layer-0 predecessors placed",
        },
        "per_policy_ms": {
            name: {
                "object": round(object_ms[name] * 1e3, 3),
                "fast": round(fast_ms[name] * 1e3, 3),
                "speedup": round(object_ms[name] / fast_ms[name], 2),
            }
            for name in _POLICIES
        },
        "sweep_speedup": round(speedup, 2),
        "etf_epoch_us": {
            "object": round(epoch_object_s * 1e6, 1),
            "fast": round(epoch_fast_s * 1e6, 1),
            "speedup": round(epoch_object_s / epoch_fast_s, 2),
        },
        "min_speedup_asserted": MIN_SPEEDUP,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=1) + "\n")

    lines = [
        "Engine benchmark: compiled fast engine vs reference object engine",
        payload["scenario"]["sweep"],
        "",
        f"{'policy':<8} {'object':>10} {'fast':>10} {'speedup':>9}",
    ]
    for name in _POLICIES:
        row = payload["per_policy_ms"][name]
        lines.append(
            f"{name:<8} {row['object']:>8.2f}ms {row['fast']:>8.2f}ms {row['speedup']:>8.2f}x"
        )
    lines += [
        f"{'total':<8} {sum(v['object'] for v in payload['per_policy_ms'].values()):>8.2f}ms "
        f"{sum(v['fast'] for v in payload['per_policy_ms'].values()):>8.2f}ms "
        f"{payload['sweep_speedup']:>8.2f}x",
        "",
        f"ETF epoch kernel: {payload['etf_epoch_us']['object']:.0f}us -> "
        f"{payload['etf_epoch_us']['fast']:.0f}us "
        f"({payload['etf_epoch_us']['speedup']:.2f}x)",
    ]
    save_artifact("engine_speedup", "\n".join(lines))
    print("\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"fast engine only {speedup:.2f}x faster than the object engine "
        f"(floor {MIN_SPEEDUP}x); see BENCH_engine.json"
    )

    # pytest-benchmark timing: the fast-engine sweep core (one repetition).
    benchmark(lambda: _time_sweep(graphs, machines, fast=None, repeats=1))
