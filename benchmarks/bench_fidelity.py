"""Ablation: latency-only vs contention-aware simulation fidelity.

The SA cost function assumes the equation-4 latency model; the contention
fidelity additionally serializes per-link store-and-forward hops and charges
σ/τ busy time to processors.  This study measures how much the richer model
changes the reported speedups and whether the SA-vs-HLF ranking is preserved
— i.e. whether the paper's conclusion is robust to the simulator fidelity.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.comm.model import LinearCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import simulate
from repro.utils.tabulate import format_table
from repro.workloads.suite import paper_program


def _run(program: str):
    graph = paper_program(program)
    machine = Machine.hypercube(3)
    out = {}
    for fidelity in ("latency", "contention"):
        sa = simulate(graph, machine, SAScheduler(SAConfig(seed=1)),
                      comm_model=LinearCommModel(), fidelity=fidelity, record_trace=False)
        hlf = float(np.mean([
            simulate(graph, machine, HLFScheduler(seed=s), comm_model=LinearCommModel(),
                     fidelity=fidelity, record_trace=False).speedup()
            for s in range(3)
        ]))
        out[fidelity] = (sa.speedup(), hlf)
    return out


@pytest.mark.benchmark(group="fidelity")
def test_fidelity_ablation_newton_euler(benchmark, save_artifact):
    results = benchmark.pedantic(_run, args=("NE",), rounds=1, iterations=1)

    # contention can only slow execution down
    assert results["contention"][0] <= results["latency"][0] + 1e-9
    assert results["contention"][1] <= results["latency"][1] + 1e-9
    # neither scheduler collapses under the richer model.  (The SA cost
    # function optimizes the latency model, so part of its advantage is
    # expected to erode once per-link contention and send/route busy time are
    # charged — the table below quantifies by how much.)
    assert results["contention"][0] > 1.0
    assert results["contention"][0] >= results["contention"][1] * 0.75

    rows = [[f, sa, hlf] for f, (sa, hlf) in results.items()]
    text = format_table(rows, headers=["fidelity", "SA speedup", "HLF speedup (mean)"],
                        title="Simulator fidelity ablation - Newton-Euler on hypercube")
    save_artifact("fidelity_ne", text)
    print("\n" + text)
