"""Fidelity benchmarks: the latency-vs-contention ablation and the engines.

The SA cost function assumes the equation-4 latency model; the contention
fidelity additionally serializes per-link store-and-forward hops and charges
σ/τ busy time to processors.  This study measures how much the richer model
changes the reported speedups and whether the SA-vs-HLF ranking is preserved
— i.e. whether the paper's conclusion is robust to the simulator fidelity.

The second benchmark times the contention fidelity itself through both
engines — the 200-task ``dag200`` list-scheduler sweep, object vs compiled
fast contention loop — asserts the two are **identical** and the speedup is
at least the loose CI floor (≥ 2×; typical measurements are 4–6×).
Measured numbers are persisted to ``BENCH_fidelity.json`` at the repository
root (enforced by ``benchmarks/check_floors.py`` and the CI ``bench-gate``
job) and rendered to ``benchmarks/results/fidelity_speedup.txt``.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from conftest import (
    SWEEP_SCENARIO,
    per_policy_payload,
    render_policy_table,
    sweep_graphs,
    time_policy_sweep,
)
from repro.comm.model import LinearCommModel
from repro.core.config import SAConfig
from repro.core.sa_scheduler import SAScheduler
from repro.machine.machine import Machine
from repro.schedulers.hlf import HLFScheduler
from repro.sim.engine import simulate
from repro.utils.tabulate import format_table
from repro.workloads.suite import paper_program

REPO_ROOT = Path(__file__).parent.parent
BENCH_JSON = REPO_ROOT / "BENCH_fidelity.json"

#: Loose CI floor for the contention-sweep engine speedup (noisy shared
#: runners); local measurements are recorded in BENCH_fidelity.json.
MIN_SPEEDUP = 2.0


def _run(program: str):
    graph = paper_program(program)
    machine = Machine.hypercube(3)
    out = {}
    for fidelity in ("latency", "contention"):
        sa = simulate(graph, machine, SAScheduler(SAConfig(seed=1)),
                      comm_model=LinearCommModel(), fidelity=fidelity, record_trace=False)
        hlf = float(np.mean([
            simulate(graph, machine, HLFScheduler(seed=s), comm_model=LinearCommModel(),
                     fidelity=fidelity, record_trace=False).speedup()
            for s in range(3)
        ]))
        out[fidelity] = (sa.speedup(), hlf)
    return out


@pytest.mark.benchmark(group="fidelity")
def test_fidelity_ablation_newton_euler(benchmark, save_artifact):
    results = benchmark.pedantic(_run, args=("NE",), rounds=1, iterations=1)

    # contention can only slow execution down
    assert results["contention"][0] <= results["latency"][0] + 1e-9
    assert results["contention"][1] <= results["latency"][1] + 1e-9
    # neither scheduler collapses under the richer model.  (The SA cost
    # function optimizes the latency model, so part of its advantage is
    # expected to erode once per-link contention and send/route busy time are
    # charged — the table below quantifies by how much.)
    assert results["contention"][0] > 1.0
    assert results["contention"][0] >= results["contention"][1] * 0.75

    rows = [[f, sa, hlf] for f, (sa, hlf) in results.items()]
    text = format_table(rows, headers=["fidelity", "SA speedup", "HLF speedup (mean)"],
                        title="Simulator fidelity ablation - Newton-Euler on hypercube")
    save_artifact("fidelity_ne", text)
    print("\n" + text)


# --------------------------------------------------------------------------- #
# Contention fidelity: compiled fast engine vs object engine
# --------------------------------------------------------------------------- #


@pytest.mark.benchmark(group="fidelity")
def test_contention_engine_speedup(benchmark, save_artifact):
    """The dag200 contention sweep: fast engine ≥ 2× the object engine."""
    machines = [Machine.hypercube(3), Machine.ring(9)]
    graphs = sweep_graphs()

    def run_sweep(fast, repeats=2):
        return time_policy_sweep(
            graphs, machines, fast, fidelity="contention", repeats=repeats
        )

    # Warm-up + equivalence proof: identical numbers from both engines.
    object_s, object_results = run_sweep(fast=False, repeats=1)
    fast_s, fast_results = run_sweep(fast=None, repeats=1)
    assert object_results == fast_results, "fast contention engine diverged from the reference"

    # Timed passes.
    object_s, _ = run_sweep(fast=False)
    fast_s, _ = run_sweep(fast=None)
    speedup = sum(object_s.values()) / sum(fast_s.values())

    payload = {
        "benchmark": "bench_fidelity",
        "scenario": {"sweep": SWEEP_SCENARIO % "contention"},
        "per_policy_ms": per_policy_payload(object_s, fast_s),
        "contention_sweep_speedup": round(speedup, 2),
        "min_speedup_asserted": MIN_SPEEDUP,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=1) + "\n")

    lines = render_policy_table(
        "Contention-fidelity benchmark: compiled fast engine vs object engine",
        payload["scenario"]["sweep"],
        payload["per_policy_ms"],
        payload["contention_sweep_speedup"],
    )
    save_artifact("fidelity_speedup", "\n".join(lines))
    print("\n".join(lines))

    assert speedup >= MIN_SPEEDUP, (
        f"fast contention engine only {speedup:.2f}x faster than the object "
        f"engine (floor {MIN_SPEEDUP}x); see BENCH_fidelity.json"
    )

    # pytest-benchmark timing: the fast-engine contention sweep (one repetition).
    benchmark(lambda: run_sweep(fast=None, repeats=1))
